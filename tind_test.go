package tind_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"tind"
)

// buildGamesDataset assembles the paper's motivating scenario through the
// public API: a complete list of games and two derived columns that lag
// behind it.
func buildGamesDataset(t testing.TB) (*tind.Dataset, *tind.History, *tind.History, *tind.History) {
	t.Helper()
	const horizon = tind.Time(400)
	ds := tind.NewDataset(horizon)
	intern := func(ss ...string) tind.ValueSet { return ds.Dict().InternAll(ss) }

	list := tind.NewBuilder(tind.Meta{Page: "List of Pokémon games", Table: "T1", Column: "Game"})
	list.Observe(0, intern("Red", "Blue", "Yellow", "Gold", "Silver"))
	list.Observe(103, intern("Red", "Blue", "Yellow", "Gold", "Silver", "Ruby"))
	list.Observe(200, intern("Red", "Blue", "Yellow", "Gold", "Silver", "Ruby", "Diamond"))
	lh, err := list.Build(horizon)
	if err != nil {
		t.Fatal(err)
	}

	// The composer's page learns of Ruby three days before the list page —
	// the temporal-shift scenario of the paper's introduction.
	composer := tind.NewBuilder(tind.Meta{Page: "Junichi Masuda", Table: "T1", Column: "Game"})
	composer.Observe(0, intern("Red", "Blue"))
	composer.Observe(100, intern("Red", "Blue", "Ruby"))
	ch, err := composer.Build(horizon)
	if err != nil {
		t.Fatal(err)
	}

	unrelated := tind.NewBuilder(tind.Meta{Page: "Some other page", Table: "T1", Column: "Thing"})
	unrelated.Observe(0, intern("Apple", "Banana"))
	unrelated.Observe(150, intern("Apple", "Cherry"))
	uh, err := unrelated.Build(horizon)
	if err != nil {
		t.Fatal(err)
	}

	for _, h := range []*tind.History{lh, ch, uh} {
		if _, err := ds.Add(h); err != nil {
			t.Fatal(err)
		}
	}
	return ds, lh, ch, uh
}

func TestPublicAPISearch(t *testing.T) {
	ds, lh, ch, uh := buildGamesDataset(t)
	idx, err := tind.BuildIndex(ds, tind.DefaultOptions(ds.Horizon()))
	if err != nil {
		t.Fatal(err)
	}
	p := tind.DefaultParams(ds.Horizon())
	res, err := idx.Search(ch, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 1 || res.IDs[0] != lh.ID() {
		t.Fatalf("composer column must be contained exactly in the game list; got %v", res.IDs)
	}
	if !tind.Holds(ch, lh, p) {
		t.Fatal("Holds must agree with Search")
	}
	if tind.Holds(ch, uh, p) {
		t.Fatal("unrelated attribute must not contain the composer column")
	}
	if res.Stats.Elapsed <= 0 {
		t.Fatal("stats must be populated")
	}
}

func TestPublicAPIReverse(t *testing.T) {
	ds, lh, ch, _ := buildGamesDataset(t)
	idx, err := tind.BuildIndex(ds, tind.DefaultReverseOptions(ds.Horizon()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := idx.Reverse(lh, tind.DefaultParams(ds.Horizon()))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range res.IDs {
		if id == ch.ID() {
			found = true
		}
	}
	if !found {
		t.Fatalf("reverse search from the game list must find the composer column; got %v", res.IDs)
	}
}

func TestPublicAPIVariants(t *testing.T) {
	ds, lh, ch, _ := buildGamesDataset(t)
	n := ds.Horizon()
	// The composer column lags 3 days behind the list: strict fails, the
	// relaxations hold.
	if tind.Holds(ch, lh, tind.Strict(n)) {
		t.Fatal("strict must fail on the 3-day delay")
	}
	if !tind.Holds(ch, lh, tind.EpsilonRelaxed(0.01, n)) {
		t.Fatal("ε=1% must absorb the delay")
	}
	if !tind.Holds(ch, lh, tind.EpsilonDelta(0, 7, n)) {
		t.Fatal("δ=7 must bridge the delay")
	}
	if got := tind.ViolationWeight(ch, lh, tind.Strict(n)); got != 3 {
		t.Fatalf("violation weight = %g, want 3 days", got)
	}
	if !tind.DeltaContained(ch, lh, 101, 3) {
		t.Fatal("δ-containment must bridge the shifted update")
	}
	if tind.StaticIND(ch, lh, 101) {
		t.Fatal("static IND must fail during the delay window")
	}
	req := tind.RequiredValues(ch, 3, tind.Uniform(n))
	if req.Len() != 3 {
		t.Fatalf("required values = %d, want 3", req.Len())
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	ds, lh, ch, _ := buildGamesDataset(t)
	bp := tind.BloomParams{M: 512, K: 2}
	st, err := tind.NewStaticMANY(ds, ds.Horizon()-1, bp)
	if err != nil {
		t.Fatal(err)
	}
	got := st.Search(ch)
	if len(got) != 1 || got[0] != lh.ID() {
		t.Fatalf("static MANY: got %v", got)
	}
	km, err := tind.NewKMany(ds, 4, 7, bp, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := km.Search(ch, tind.DefaultParams(ds.Horizon()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 1 || res.IDs[0] != lh.ID() {
		t.Fatalf("k-MANY: got %v", res.IDs)
	}
}

func TestPublicAPIWikiPipeline(t *testing.T) {
	src := `{| class="wikitable"
! Game !! Year
|-
| [[Pokémon Red and Blue|Red]] || 1996
|-
| Gold || 1999
|}`
	tables := tind.ParseTables(src)
	if len(tables) != 1 || tables[0].Headers[0] != "Game" {
		t.Fatalf("ParseTables: %+v", tables)
	}
	ex := tind.NewExtractor()
	start := time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)
	if err := ex.Process(tind.WikiRevision{Page: "P", ID: 1, Timestamp: start, Wikitext: src}); err != nil {
		t.Fatal(err)
	}
	ds, rep, err := tind.Preprocess(ex.Records(), tind.PreprocessConfig{
		Start: start, End: start.AddDate(0, 0, 30),
		MinVersions: 1, MinMedianCardinality: 1, NumericThreshold: 0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 1 || rep.DroppedNumeric != 1 {
		t.Fatalf("pipeline: len=%d report=%+v", ds.Len(), rep)
	}
}

func TestPublicAPICorpusAndEval(t *testing.T) {
	c, err := tind.GenerateCorpus(tind.CorpusConfig{Seed: 3, Attributes: 80, Horizon: 500, AttrsPerDomain: 20})
	if err != nil {
		t.Fatal(err)
	}
	labeled, err := tind.SampleLabeled(c.Dataset, c.Truth, c.Dataset.Horizon()-1, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(labeled) == 0 {
		t.Fatal("no labelled pairs")
	}
	idx, err := tind.BuildIndex(c.Dataset, tind.DefaultOptions(c.Dataset.Horizon()))
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := idx.AllPairs(tind.DefaultParams(c.Dataset.Horizon()), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Fatal("all-pairs discovery found nothing")
	}
}

func TestPublicAPIQueryAndMetrics(t *testing.T) {
	ds, lh, ch, _ := buildGamesDataset(t)
	idx, err := tind.BuildIndex(ds, tind.DefaultOptions(ds.Horizon()).ForReverse())
	if err != nil {
		t.Fatal(err)
	}
	p := tind.DefaultParams(ds.Horizon())

	res, err := idx.Query(context.Background(), ch, tind.QueryOptions{Mode: tind.ModeForward, Params: p, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 1 || res.IDs[0] != lh.ID() {
		t.Fatalf("unified Query must match Search: %v", res.IDs)
	}
	if res.Stats.Timings.Total <= 0 || len(res.Stats.Trace) == 0 {
		t.Fatalf("timings/trace not populated: %+v", res.Stats)
	}

	if _, err := idx.Query(context.Background(), ch, tind.QueryOptions{Mode: tind.ModeTopK, Params: p}); !errors.Is(err, tind.ErrInvalidIndexOptions) {
		t.Fatalf("topk without K: err %v, want ErrInvalidIndexOptions", err)
	}

	var buf bytes.Buffer
	if err := tind.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "tind_query_phase_seconds") {
		t.Fatal("WriteMetrics exposition missing query-phase histogram")
	}
}

func TestPublicAPISharded(t *testing.T) {
	c, err := tind.GenerateCorpus(tind.CorpusConfig{Seed: 11, Attributes: 60, Horizon: 200, AttrsPerDomain: 12})
	if err != nil {
		t.Fatal(err)
	}
	ds := c.Dataset
	p := tind.DefaultParams(ds.Horizon())
	opt := tind.DefaultOptions(ds.Horizon())
	opt.Params = p
	opt.Reverse = true

	idx, err := tind.BuildIndex(ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	sx, err := tind.BuildShardedIndex(ds, tind.ShardOptions{
		Shards: 4, Seed: 7, Index: tind.PartitionShardOptions(opt, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sx.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", sx.NumShards())
	}
	for id := 0; id < ds.Len(); id++ {
		q := ds.Attr(tind.AttrID(id))
		for _, mode := range []tind.QueryMode{tind.ModeForward, tind.ModeReverse} {
			o := tind.QueryOptions{Mode: mode, Params: p}
			mres, err := idx.Query(context.Background(), q, o)
			if err != nil {
				t.Fatal(err)
			}
			sres, err := sx.Query(context.Background(), q, o)
			if err != nil {
				t.Fatal(err)
			}
			if len(mres.IDs) != len(sres.IDs) {
				t.Fatalf("attr %d mode %v: sharded answer %v != monolith %v", id, mode, sres.IDs, mres.IDs)
			}
			for i := range mres.IDs {
				if mres.IDs[i] != sres.IDs[i] {
					t.Fatalf("attr %d mode %v: sharded answer %v != monolith %v", id, mode, sres.IDs, mres.IDs)
				}
			}
		}
	}

	dir := t.TempDir()
	if err := tind.WriteShardedDataset(ds, dir, 4, 7); err != nil {
		t.Fatal(err)
	}
	if !tind.IsShardedDataset(dir) {
		t.Fatal("IsShardedDataset must recognize the container it just wrote")
	}
	got, man, err := tind.ReadShardedDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Shards != 4 || man.Seed != 7 {
		t.Fatalf("manifest round-trip: %+v", man)
	}
	if got.Len() != ds.Len() || got.Horizon() != ds.Horizon() {
		t.Fatalf("sharded round-trip shape: %d/%d attrs, %d/%d horizon",
			got.Len(), ds.Len(), got.Horizon(), ds.Horizon())
	}
}

func TestPublicAPIIngest(t *testing.T) {
	c, err := tind.GenerateCorpus(tind.CorpusConfig{Seed: 5, Attributes: 30, Horizon: 150, AttrsPerDomain: 10})
	if err != nil {
		t.Fatal(err)
	}
	ds := c.Dataset
	opt := tind.DefaultOptions(ds.Horizon())
	opt.Reverse = true
	idx, err := tind.BuildIndex(ds, opt)
	if err != nil {
		t.Fatal(err)
	}

	path := t.TempDir() + "/facade.wal"
	log, err := tind.OpenWAL(path, tind.WALOptions{Sync: tind.WALSyncNever})
	if err != nil {
		t.Fatal(err)
	}
	ing := tind.NewIngester(idx, ds, log, tind.IngestOptions{MaxDirty: 1 << 30, MaxDirtyAge: time.Hour})
	ing.Start()

	oldHorizon := ds.Horizon()
	target := tind.AttrID(0)
	var obsEnd tind.Time
	ing.View(func(ds *tind.Dataset) { obsEnd = ds.Attr(target).ObservedUntil() })
	batch := []tind.WALRecord{
		{Type: tind.WALExtendHorizon, Horizon: oldHorizon + 5},
		{Type: tind.WALAppend, Attr: target, Start: obsEnd, End: oldHorizon + 5,
			Values: []string{"facade-live-1", "facade-live-2"}},
	}
	if err := ing.Submit(batch); err != nil {
		t.Fatal(err)
	}
	// A batch appending before the pending observation end must be
	// rejected atomically, leaving the WAL untouched.
	bad := []tind.WALRecord{{Type: tind.WALAppend, Attr: target, Start: 0, End: 1, Values: []string{"x"}}}
	if err := ing.Submit(bad); !errors.Is(err, tind.ErrIngestRejected) {
		t.Fatalf("Submit(out-of-order append) = %v, want ErrIngestRejected", err)
	}
	if err := ing.Flush(); err != nil {
		t.Fatal(err)
	}
	st := ing.Stats()
	if st.AppliedRecords != 2 || st.PendingRecords != 0 || st.RejectedRecords != 1 {
		t.Fatalf("stats after flush = %+v, want 2 applied, 0 pending, 1 rejected", st)
	}
	var gotHorizon tind.Time
	ing.View(func(ds *tind.Dataset) { gotHorizon = ds.Horizon() })
	if gotHorizon != oldHorizon+5 {
		t.Fatalf("horizon = %d, want %d", gotHorizon, oldHorizon+5)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// ReplayWAL over a regenerated corpus must land on the same state.
	c2, err := tind.GenerateCorpus(tind.CorpusConfig{Seed: 5, Attributes: 30, Horizon: 150, AttrsPerDomain: 10})
	if err != nil {
		t.Fatal(err)
	}
	log2, err := tind.OpenWAL(path, tind.WALOptions{Sync: tind.WALSyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	_, n, err := tind.ReplayWAL(c2.Dataset, log2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("ReplayWAL replayed %d records, want 2", n)
	}
	if c2.Dataset.Horizon() != oldHorizon+5 {
		t.Fatalf("replayed horizon = %d, want %d", c2.Dataset.Horizon(), oldHorizon+5)
	}
	if got := c2.Dataset.Attr(target).ObservedUntil(); got != oldHorizon+5 {
		t.Fatalf("replayed observation end = %d, want %d", got, oldHorizon+5)
	}
}
