module tind

go 1.22
