// Benchmarks: one per table/figure of the paper's evaluation, measuring
// the operation each figure studies. The experiment binaries
// (cmd/experiments) print the full tables; these benches track the
// underlying costs (per-query latency, index build, validation) so
// regressions surface in `go test -bench`.
package tind_test

import (
	"fmt"
	"sync"
	"testing"

	"tind"
)

// benchCorpus is shared across benchmarks (generation dominates otherwise).
var (
	benchOnce   sync.Once
	benchCorpus *tind.Corpus
)

func corpus(b *testing.B) *tind.Corpus {
	b.Helper()
	benchOnce.Do(func() {
		c, err := tind.GenerateCorpus(tind.CorpusConfig{
			Seed: 42, Attributes: 1000, Horizon: 800,
		})
		if err != nil {
			panic(err)
		}
		benchCorpus = c
	})
	return benchCorpus
}

func buildIndex(b *testing.B, ds *tind.Dataset, opt tind.IndexOptions) *tind.Index {
	b.Helper()
	idx, err := tind.BuildIndex(ds, opt)
	if err != nil {
		b.Fatal(err)
	}
	return idx
}

func queryLoop(b *testing.B, idx *tind.Index, ds *tind.Dataset, p tind.Params, reverse bool) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := ds.Attr(tind.AttrID(i % ds.Len()))
		var err error
		if reverse {
			_, err = idx.Reverse(q, p)
		} else {
			_, err = idx.Search(q, p)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7Search measures tIND search latency at growing |D|
// (Figure 7, "Search" series).
func BenchmarkFig7Search(b *testing.B) {
	c := corpus(b)
	for _, frac := range []int{4, 2, 1} {
		n := c.Dataset.Len() / frac
		b.Run(fmt.Sprintf("attrs=%d", n), func(b *testing.B) {
			ds := c.Dataset.Subset(n)
			idx := buildIndex(b, ds, tind.DefaultOptions(ds.Horizon()))
			queryLoop(b, idx, ds, tind.DefaultParams(ds.Horizon()), false)
		})
	}
}

// BenchmarkFig7Reverse measures reverse search latency (Figure 7,
// "Search (r)" series).
func BenchmarkFig7Reverse(b *testing.B) {
	c := corpus(b)
	ds := c.Dataset
	idx := buildIndex(b, ds, tind.DefaultReverseOptions(ds.Horizon()))
	queryLoop(b, idx, ds, tind.DefaultParams(ds.Horizon()), true)
}

// BenchmarkFig7KMany measures the k-MANY baseline per query (Figure 7,
// "k-MANY" series) — expect an order of magnitude above Search.
func BenchmarkFig7KMany(b *testing.B) {
	c := corpus(b)
	ds := c.Dataset
	km, err := tind.NewKMany(ds, 16, 7, tind.BloomParams{M: 4096, K: 2}, 1)
	if err != nil {
		b.Fatal(err)
	}
	p := tind.DefaultParams(ds.Horizon())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := km.Search(ds.Attr(tind.AttrID(i%ds.Len())), p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8TINDCounting measures search across the ε×δ grid corners
// (Figure 8 counts tINDs at these settings).
func BenchmarkFig8TINDCounting(b *testing.B) {
	c := corpus(b)
	ds := c.Dataset
	opt := tind.DefaultOptions(ds.Horizon())
	opt.Params = tind.Params{Epsilon: 39, Delta: 365, Weight: tind.Uniform(ds.Horizon())}
	idx := buildIndex(b, ds, opt)
	for _, s := range []struct {
		eps   float64
		delta tind.Time
	}{{0, 0}, {3, 7}, {39, 365}} {
		b.Run(fmt.Sprintf("eps=%g/delta=%d", s.eps, s.delta), func(b *testing.B) {
			p := tind.Params{Epsilon: s.eps, Delta: s.delta, Weight: tind.Uniform(ds.Horizon())}
			queryLoop(b, idx, ds, p, false)
		})
	}
}

// BenchmarkFig9ParameterSweep measures the runtime impact of generous
// query parameters (Figure 9).
func BenchmarkFig9ParameterSweep(b *testing.B) {
	c := corpus(b)
	ds := c.Dataset
	opt := tind.DefaultOptions(ds.Horizon())
	opt.Params = tind.Params{Epsilon: 39, Delta: 365, Weight: tind.Uniform(ds.Horizon())}
	idx := buildIndex(b, ds, opt)
	for _, eps := range []float64{1, 15, 39} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			p := tind.Params{Epsilon: eps, Delta: 7, Weight: tind.Uniform(ds.Horizon())}
			queryLoop(b, idx, ds, p, false)
		})
	}
}

// BenchmarkFig10IndexEpsilonDeviation: index built for ε=39d, queries use
// ε=3d (Figure 10).
func BenchmarkFig10IndexEpsilonDeviation(b *testing.B) {
	c := corpus(b)
	ds := c.Dataset
	opt := tind.DefaultOptions(ds.Horizon())
	opt.Params = tind.Params{Epsilon: 39, Delta: 7, Weight: tind.Uniform(ds.Horizon())}
	idx := buildIndex(b, ds, opt)
	queryLoop(b, idx, ds, tind.DefaultParams(ds.Horizon()), false)
}

// BenchmarkFig11IndexDeltaDeviation: index built for δ=112d, queries use
// δ=7d (Figure 11).
func BenchmarkFig11IndexDeltaDeviation(b *testing.B) {
	c := corpus(b)
	ds := c.Dataset
	opt := tind.DefaultOptions(ds.Horizon())
	opt.Params = tind.Params{Epsilon: 3, Delta: 112, Weight: tind.Uniform(ds.Horizon())}
	idx := buildIndex(b, ds, opt)
	queryLoop(b, idx, ds, tind.DefaultParams(ds.Horizon()), false)
}

// BenchmarkFig12BloomSize sweeps the Bloom filter size m for both
// directions (Figure 12).
func BenchmarkFig12BloomSize(b *testing.B) {
	c := corpus(b)
	ds := c.Dataset
	for _, m := range []int{512, 2048, 8192} {
		opt := tind.DefaultOptions(ds.Horizon())
		opt.Bloom = tind.BloomParams{M: m, K: 2}
		opt.Reverse = true
		idx := buildIndex(b, ds, opt)
		b.Run(fmt.Sprintf("m=%d/search", m), func(b *testing.B) {
			queryLoop(b, idx, ds, tind.DefaultParams(ds.Horizon()), false)
		})
		b.Run(fmt.Sprintf("m=%d/reverse", m), func(b *testing.B) {
			queryLoop(b, idx, ds, tind.DefaultParams(ds.Horizon()), true)
		})
	}
}

// BenchmarkFig13Slices sweeps the number of time slices k and the slice
// strategy for search (Figure 13).
func BenchmarkFig13Slices(b *testing.B) {
	c := corpus(b)
	ds := c.Dataset
	for _, k := range []int{2, 8, 16} {
		for _, strat := range []tind.SliceStrategy{tind.RandomSlices, tind.WeightedRandomSlices} {
			opt := tind.DefaultOptions(ds.Horizon())
			opt.Slices = k
			opt.Strategy = strat
			idx := buildIndex(b, ds, opt)
			b.Run(fmt.Sprintf("k=%d/%v", k, strat), func(b *testing.B) {
				queryLoop(b, idx, ds, tind.DefaultParams(ds.Horizon()), false)
			})
		}
	}
}

// BenchmarkFig14SlicesReverse sweeps k for reverse search (Figure 14),
// where more slices hurt.
func BenchmarkFig14SlicesReverse(b *testing.B) {
	c := corpus(b)
	ds := c.Dataset
	for _, k := range []int{2, 8, 16} {
		opt := tind.DefaultReverseOptions(ds.Horizon())
		opt.Slices = k
		opt.ReverseSlices = k
		idx := buildIndex(b, ds, opt)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			queryLoop(b, idx, ds, tind.DefaultParams(ds.Horizon()), true)
		})
	}
}

// BenchmarkFig15Evaluation measures one grid-search point of the
// genuineness evaluation (Figure 15): validating the labelled set under
// one parametrization.
func BenchmarkFig15Evaluation(b *testing.B) {
	c := corpus(b)
	ds := c.Dataset
	labeled, err := tind.SampleLabeled(ds, c.Truth, ds.Horizon()-1, 50, 1)
	if err != nil {
		b.Fatal(err)
	}
	p := tind.DefaultParams(ds.Horizon())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, lp := range labeled {
			tind.Holds(ds.Attr(lp.LHS), ds.Attr(lp.RHS), p)
		}
	}
}

// BenchmarkTable2Labeling measures assembling the bucket-sampled labelled
// IND set (Table 2's substrate): static all-pairs discovery + bucketing.
func BenchmarkTable2Labeling(b *testing.B) {
	c := corpus(b)
	ds := c.Dataset
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tind.SampleLabeled(ds, c.Truth, ds.Horizon()-1, 100, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllPairs measures complete tIND discovery (the §5.2 "less than
// three hours for 1.3M attributes" experiment, scaled down).
func BenchmarkAllPairs(b *testing.B) {
	c := corpus(b)
	ds := c.Dataset.Subset(400)
	idx := buildIndex(b, ds, tind.DefaultOptions(ds.Horizon()))
	p := tind.DefaultParams(ds.Horizon())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.AllPairs(p, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexBuild measures index construction (part of the §5.2
// wall-clock budget).
func BenchmarkIndexBuild(b *testing.B) {
	c := corpus(b)
	ds := c.Dataset
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tind.BuildIndex(ds, tind.DefaultOptions(ds.Horizon())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkValidation measures Algorithm 2 on a single genuine pair.
func BenchmarkValidation(b *testing.B) {
	c := corpus(b)
	ds := c.Dataset
	p := tind.DefaultParams(ds.Horizon())
	// Find one genuine pair.
	var q, a *tind.History
	for lhs := tind.AttrID(0); int(lhs) < ds.Len() && q == nil; lhs++ {
		for rhs := tind.AttrID(0); int(rhs) < ds.Len(); rhs++ {
			if c.Truth.Genuine(lhs, rhs) {
				q, a = ds.Attr(lhs), ds.Attr(rhs)
				break
			}
		}
	}
	if q == nil {
		b.Fatal("no genuine pair")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tind.Holds(q, a, p)
	}
}
