package tind_test

import (
	"fmt"
	"time"

	"tind"
)

// Example demonstrates the core workflow: build versioned attributes,
// index them, and search for temporal inclusion dependencies.
func Example() {
	const horizon = tind.Time(365)
	ds := tind.NewDataset(horizon)
	in := func(ss ...string) tind.ValueSet { return ds.Dict().InternAll(ss) }

	list := tind.NewBuilder(tind.Meta{Page: "List of games", Column: "Game"})
	list.Observe(0, in("Red", "Blue"))
	list.Observe(100, in("Red", "Blue", "Gold"))
	lh, _ := list.Build(horizon)
	ds.Add(lh)

	composer := tind.NewBuilder(tind.Meta{Page: "Composer", Column: "Game"})
	composer.Observe(0, in("Red"))
	composer.Observe(98, in("Red", "Gold")) // two days ahead of the list
	ch, _ := composer.Build(horizon)
	ds.Add(ch)

	idx, _ := tind.BuildIndex(ds, tind.DefaultOptions(horizon))
	res, _ := idx.Search(ch, tind.DefaultParams(horizon))
	for _, id := range res.IDs {
		fmt.Println(ds.Attr(id).Meta().Page)
	}
	// Output: List of games
}

// ExampleHolds shows the difference between the strict and relaxed tIND
// variants on a pair with a short temporal shift.
func ExampleHolds() {
	const horizon = tind.Time(100)
	ds := tind.NewDataset(horizon)
	in := func(ss ...string) tind.ValueSet { return ds.Dict().InternAll(ss) }

	q := tind.NewBuilder(tind.Meta{Page: "Q"})
	q.Observe(0, in("a"))
	q.Observe(50, in("a", "b")) // Q learns of "b" three days early
	qh, _ := q.Build(horizon)

	a := tind.NewBuilder(tind.Meta{Page: "A"})
	a.Observe(0, in("a", "x"))
	a.Observe(53, in("a", "b", "x"))
	ah, _ := a.Build(horizon)

	fmt.Println("strict:", tind.Holds(qh, ah, tind.Strict(horizon)))
	fmt.Println("relaxed:", tind.Holds(qh, ah, tind.DefaultParams(horizon)))
	fmt.Println("violation days:", tind.ViolationWeight(qh, ah, tind.Strict(horizon)))
	// Output:
	// strict: false
	// relaxed: true
	// violation days: 3
}

// ExampleParseTables extracts a wikitable and resolves its links.
func ExampleParseTables() {
	tables := tind.ParseTables(`{| class="wikitable"
! Game !! Year
|-
| [[Pokémon Red and Blue|Red]] || 1996
|}`)
	fmt.Println(tables[0].Headers[0], "/", tables[0].Rows[0][0])
	// Output: Game / Pokémon Red and Blue
}

// ExamplePreprocess runs the §5.1 pipeline on extracted records.
func ExamplePreprocess() {
	start := time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC)
	ex := tind.NewExtractor()
	ex.Process(tind.WikiRevision{
		Page: "P", ID: 1, Timestamp: start.Add(10 * time.Hour),
		Wikitext: "{|\n! No. !! Name\n|-\n| 1 || Alice\n|-\n| 2 || Bob\n|}",
	})
	ds, report, _ := tind.Preprocess(ex.Records(), tind.PreprocessConfig{
		Start: start, End: start.AddDate(0, 0, 30),
		MinVersions: 1, MinMedianCardinality: 1,
	})
	fmt.Println("kept:", ds.Len(), "numeric dropped:", report.DroppedNumeric)
	// Output: kept: 1 numeric dropped: 1
}
