// Wide-event, tail-sampling and SLO wiring of tindserve: the query
// middleware records one structured event per query/batch into the
// process-wide obs ring (served at GET /debug/events), the tail sampler
// decides post-completion which events keep their trace, and the SLO
// engine turns the HTTP histograms and ingest staleness gauge into
// multi-window burn-rate gauges (GET /slo, optionally feeding /readyz).
package main

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"tind/internal/index"
	"tind/internal/obs"
)

// Tail-sampling defaults: always-on span capture with retention for the
// slowest 5% of recent queries (plus every errored one), estimated over
// a ring of the last 1024 requests.
const (
	tailSamplePercentile = 0.95
	tailSampleWindow     = 1024
)

// newSLOEngine declares the service objectives over the process
// registry:
//
//   - query_latency: at least 99% of admitted queries complete within
//     cfg.sloLatency, measured on tind_http_query_seconds (the HTTP
//     wall-time histogram, so shard stragglers and gather overhead
//     count).
//   - http_error_ratio: at most 0.1% of query requests answer 5xx.
//   - ingest_staleness: the oldest acknowledged-but-unapplied delta
//     stays inside cfg.maxStaleness (always healthy when ingestion is
//     disabled or unbounded — the gauge reads 0).
//   - router_shard_availability (router mode only): at most 0.1% of
//     scatter legs fail after replica retries, measured on
//     tind_router_legs_total — partial results burn this budget even
//     though the HTTP answer is a 200, so a flapping shard cannot hide
//     behind the error-ratio objective.
//
// Burn rates are published as tind_slo_burn_rate{slo,window} and served
// on GET /slo; with cfg.sloBurnDegrade > 0 a sustained multi-window burn
// flips /readyz to degraded.
func newSLOEngine(cfg config) *obs.SLOEngine {
	latencyThreshold := cfg.sloLatency.Seconds()
	maxStale := cfg.maxStaleness.Seconds()
	objectives := []obs.SLO{
		{
			Name:        "query_latency",
			Description: fmt.Sprintf("99%% of queries complete within %v", cfg.sloLatency),
			Target:      0.99,
			Bad: func(s *obs.Snapshot) float64 {
				m, _ := s.Get("tind_http_query_seconds")
				return m.CountAbove(latencyThreshold)
			},
			Total: func(s *obs.Snapshot) float64 {
				m, _ := s.Get("tind_http_query_seconds")
				return float64(m.Count)
			},
		},
		{
			Name:        "http_error_ratio",
			Description: "99.9% of query requests answer without a 5xx",
			Target:      0.999,
			Bad: func(s *obs.Snapshot) float64 {
				return sumRequests(s, func(code int) bool { return code >= 500 })
			},
			Total: func(s *obs.Snapshot) float64 {
				return sumRequests(s, func(int) bool { return true })
			},
		},
		{
			Name:        "ingest_staleness",
			Description: fmt.Sprintf("99%% of checks find ingestion within the %v staleness bound", cfg.maxStaleness),
			Target:      0.99,
			Probe: func(s *obs.Snapshot) bool {
				if maxStale <= 0 {
					return true
				}
				return s.Value("tind_ingest_oldest_pending_seconds") <= maxStale
			},
		},
	}
	if cfg.router {
		objectives = append(objectives, obs.SLO{
			Name:        "router_shard_availability",
			Description: "99.9% of scatter legs answer after replica retries",
			Target:      0.999,
			Bad: func(s *obs.Snapshot) float64 {
				return s.Value("tind_router_legs_total", obs.L("status", "error"))
			},
			Total: func(s *obs.Snapshot) float64 {
				return s.Value("tind_router_legs_total", obs.L("status", "ok")) +
					s.Value("tind_router_legs_total", obs.L("status", "error"))
			},
		})
	}
	return obs.NewSLOEngine(obs.Default(), obs.SLOOptions{
		Interval:    cfg.sloInterval,
		DegradeBurn: cfg.sloBurnDegrade,
	}, objectives...)
}

// sumRequests folds tind_http_requests_total over every (endpoint, code)
// label set whose status code the predicate accepts.
func sumRequests(s *obs.Snapshot, accept func(code int) bool) float64 {
	var sum float64
	for _, m := range s.Metrics {
		if m.Name != "tind_http_requests_total" {
			continue
		}
		code, err := strconv.Atoi(m.Label("code"))
		if err != nil {
			continue
		}
		if accept(code) {
			sum += m.Value
		}
	}
	return sum
}

// errorClass buckets an HTTP status for the wide event's error_class
// field: empty on success, otherwise a stable operator-facing class.
func errorClass(status int) string {
	switch {
	case status == statusClientClosedRequest:
		return "canceled"
	case status == http.StatusGatewayTimeout:
		return "deadline_exceeded"
	case status >= 500:
		return "internal"
	case status >= 400:
		return "client_error"
	default:
		return ""
	}
}

// eventPhases converts the index phase timings to the obs event shape.
func eventPhases(t index.Timings) obs.EventPhases {
	return obs.EventPhases{
		MTPrune:     t.MTPrune,
		SlicePrune:  t.SlicePrune,
		SubsetCheck: t.SubsetCheck,
		Validate:    t.Validate,
		Rank:        t.Rank,
	}
}

// eventShards converts per-shard attribution to the obs event shape.
func eventShards(ps []index.ShardStat) []obs.EventShard {
	if len(ps) == 0 {
		return nil
	}
	out := make([]obs.EventShard, len(ps))
	for i, s := range ps {
		out[i] = obs.EventShard{
			Shard:      s.Shard,
			Elapsed:    s.Elapsed,
			Phases:     eventPhases(s.Timings),
			Candidates: s.InitialCandidates,
			Validated:  s.Validated,
			Results:    s.Results,
		}
	}
	return out
}

// recordQueryEvent builds and records the wide event of one completed
// query-shaped request, deciding trace retention through the tail
// sampler. Called by the query middleware for every request whose
// handler noted stats.
func (s *server) recordQueryEvent(note *queryNote, qid uint64, endpoint string, status int, elapsed time.Duration) {
	st := note.stats
	errClass := errorClass(status)
	ev := obs.Event{
		Kind:       note.kind,
		QueryID:    qid,
		Mode:       note.mode,
		Endpoint:   endpoint,
		Status:     status,
		BatchSize:  note.batch,
		Duration:   elapsed,
		ErrorClass: errClass,
		Candidates: st.InitialCandidates,
		Validated:  st.Validated,
		Results:    st.Results,
		Phases:     eventPhases(st.Timings),
		Shards:     eventShards(st.PerShard),
	}
	if s.sampler.Admit(elapsed, errClass != "") {
		ev.Trace = st.Trace
	}
	obs.Events().Record(ev)
}

// eventsMaxLimit caps one /debug/events response.
const eventsMaxLimit = 1000

// handleEvents serves GET /debug/events: the wide-event ring, newest
// first, filterable by kind, mode, min_duration (Go duration syntax),
// error=true and limit. Registered outside the query middleware so it
// works while the index builds and is never shed — inspecting a
// degraded server must not depend on the server being healthy.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query()
	f := obs.EventFilter{
		Kind:  qs.Get("kind"),
		Mode:  qs.Get("mode"),
		Limit: 100,
	}
	if v := qs.Get("min_duration"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, codeInvalidParameter, fmt.Errorf("bad min_duration %q: %w", v, err))
			return
		}
		f.MinDuration = d
	}
	if v := qs.Get("error"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, codeInvalidParameter, fmt.Errorf("bad error %q: %w", v, err))
			return
		}
		f.ErrorsOnly = b
	}
	if v := qs.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > eventsMaxLimit {
			httpError(w, http.StatusBadRequest, codeInvalidParameter,
				fmt.Errorf("bad limit %q: want an integer in [1,%d]", v, eventsMaxLimit))
			return
		}
		f.Limit = n
	}
	events := obs.Events().Select(f)
	writeJSON(w, map[string]interface{}{
		"count":  len(events),
		"events": events,
	})
}

// handleSLO serves GET /slo: the latest multi-window evaluation of every
// declared objective. Like /debug/events it bypasses the query
// middleware — SLO state is exactly what an operator needs while the
// server is refusing queries.
func (s *server) handleSLO(w http.ResponseWriter, r *http.Request) {
	statuses := s.slo.Status()
	healthy := true
	for _, st := range statuses {
		if !st.Healthy {
			healthy = false
		}
	}
	writeJSON(w, map[string]interface{}{
		"healthy":    healthy,
		"objectives": statuses,
	})
}

// openMetricsContentType is the negotiated content type of the
// OpenMetrics rendering (which carries exemplars; the 0.0.4 text format
// cannot).
const openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// wantsOpenMetrics reports whether the scraper negotiated the
// OpenMetrics exposition via Accept.
func wantsOpenMetrics(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text")
}
