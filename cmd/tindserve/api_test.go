package main

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// errEnvelope extracts the {"error": {"code", "message"}} envelope every
// failure response must carry, failing the test if the shape is wrong.
func errEnvelope(t *testing.T, out map[string]interface{}) (code, message string) {
	t.Helper()
	env, ok := out["error"].(map[string]interface{})
	if !ok {
		t.Fatalf("error envelope missing or flat: %v", out)
	}
	code, _ = env["code"].(string)
	message, _ = env["message"].(string)
	if code == "" || message == "" {
		t.Fatalf("error envelope incomplete: %v", env)
	}
	return code, message
}

// TestMalformedParameters drives every query endpoint through the shared
// decode→compile path with malformed input: all of them must answer 400
// with the invalid_parameter code and a message naming the offending
// parameter.
func TestMalformedParameters(t *testing.T) {
	_, ts := testServer(t)
	cases := []struct {
		path    string
		wantMsg string // substring of the envelope message
	}{
		{"/search", "attr"},
		{"/search?attr=no-such-page", "no attribute matches"},
		{"/search?attr=99999", "out of range"},
		{"/search?attr=-1", "out of range"},
		{"/search?attr=0&eps=-1", "eps"},
		{"/search?attr=0&eps=abc", "eps"},
		{"/search?attr=0&delta=-3", "delta"},
		{"/search?attr=0&delta=x", "delta"},
		{"/reverse?attr=0&eps=nope", "eps"},
		{"/reverse?attr=99999", "out of range"},
		{"/topk?attr=0&k=0", "k"},
		{"/topk?attr=0&k=-2", "k"},
		{"/topk?attr=0&k=1001", "k"},
		{"/topk?attr=0&k=abc", "k"},
		{"/topk?attr=0&delta=-1", "delta"},
		{"/explain?rhs=0", "lhs"},
		{"/explain?lhs=0", "rhs"},
		{"/explain?lhs=0&rhs=1&eps=-2", "eps"},
		{"/attr?attr=99999", "out of range"},
		{"/attr", "attr"},
	}
	for _, tc := range cases {
		out := getJSON(t, ts.URL+tc.path, http.StatusBadRequest)
		code, msg := errEnvelope(t, out)
		if code != "invalid_parameter" {
			t.Errorf("%s: code %q, want invalid_parameter", tc.path, code)
		}
		if !strings.Contains(msg, tc.wantMsg) {
			t.Errorf("%s: message %q does not name %q", tc.path, msg, tc.wantMsg)
		}
	}
}

// TestBatchEndpointMatchesSingleQueries posts a mixed-mode batch and
// checks each entry's body against the matching single-query endpoint:
// identical result ids, identical echo fields.
func TestBatchEndpointMatchesSingleQueries(t *testing.T) {
	_, ts := testServer(t)
	body := `{"queries": [
		{"attr": "0", "eps": 3, "delta": 7},
		{"attr": "1", "mode": "reverse", "eps": 3},
		{"attr": "derived", "mode": "topk", "k": 3},
		{"attr": "2", "mode": "forward"}
	]}`
	singles := []string{
		"/search?attr=0&eps=3&delta=7",
		"/reverse?attr=1&eps=3",
		"/topk?attr=derived&k=3",
		"/search?attr=2",
	}

	out := postJSON(t, ts.URL+"/query/batch", body, http.StatusOK)
	if out["batch_size"].(float64) != 4 {
		t.Fatalf("batch_size: %v", out["batch_size"])
	}
	results, ok := out["results"].([]interface{})
	if !ok || len(results) != 4 {
		t.Fatalf("results shape: %v", out["results"])
	}
	for i, single := range singles {
		want := getJSON(t, ts.URL+single, http.StatusOK)
		got, ok := results[i].(map[string]interface{})
		if !ok {
			t.Fatalf("entry %d not an object", i)
		}
		if fmt.Sprint(got["query"]) != fmt.Sprint(want["query"]) {
			t.Errorf("entry %d: query echo %v, single %v", i, got["query"], want["query"])
		}
		if fmt.Sprint(got["results"]) != fmt.Sprint(want["results"]) {
			t.Errorf("entry %d (%s): batch results deviate from single query\nbatch:  %v\nsingle: %v",
				i, single, got["results"], want["results"])
		}
		if got["eps"] != want["eps"] || got["delta"] != want["delta"] {
			t.Errorf("entry %d: parameter echo (%v, %v) vs (%v, %v)",
				i, got["eps"], got["delta"], want["eps"], want["delta"])
		}
	}
	if out["elapsed_ms"].(float64) < 0 {
		t.Fatalf("elapsed_ms: %v", out["elapsed_ms"])
	}
}

// TestBatchEndpointRejectsMalformedRequests exercises the batch-level
// validation: body shape, size bound, and per-entry compile failures
// that must name the offending entry.
func TestBatchEndpointRejectsMalformedRequests(t *testing.T) {
	_, ts := testServer(t)
	huge := `{"queries": [` + strings.Repeat(`{"attr": "0"},`, 256) + `{"attr": "0"}]}`
	cases := []struct {
		name    string
		body    string
		wantMsg string
	}{
		{"garbage body", `{"queries": nope`, "bad request body"},
		{"unknown field", `{"batch": []}`, "bad request body"},
		{"empty batch", `{"queries": []}`, "empty"},
		{"oversized batch", huge, "exceeds the limit"},
		{"entry missing attr", `{"queries": [{"attr": "0"}, {"mode": "forward"}]}`, "query 1"},
		{"entry bad mode", `{"queries": [{"attr": "0", "mode": "sideways"}]}`, "query 0"},
		{"entry bad eps", `{"queries": [{"attr": "0", "eps": -4}]}`, "query 0"},
		{"entry bad k", `{"queries": [{"attr": "0", "mode": "topk", "k": 0}]}`, "query 0"},
		{"entry out of range", `{"queries": [{"attr": "99999"}]}`, "out of range"},
	}
	for _, tc := range cases {
		out := postJSON(t, ts.URL+"/query/batch", tc.body, http.StatusBadRequest)
		code, msg := errEnvelope(t, out)
		if code != "invalid_parameter" {
			t.Errorf("%s: code %q, want invalid_parameter", tc.name, code)
		}
		if !strings.Contains(msg, tc.wantMsg) {
			t.Errorf("%s: message %q does not contain %q", tc.name, msg, tc.wantMsg)
		}
	}
}
