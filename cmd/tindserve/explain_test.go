package main

import (
	"net/http"
	"testing"
)

func TestExplainEndpoint(t *testing.T) {
	_, ts := testServer(t)
	out := getJSON(t, ts.URL+"/explain?lhs=0&rhs=1", http.StatusOK)
	if out["violations"] == nil || out["holds"] == nil {
		t.Fatalf("explain response shape: %v", out)
	}
	if _, err := http.Get(ts.URL + "/explain?lhs=0"); err != nil {
		t.Fatal(err)
	}
	getJSON(t, ts.URL+"/explain?lhs=0", http.StatusBadRequest)
	getJSON(t, ts.URL+"/explain?lhs=0&rhs=99999", http.StatusBadRequest)
}
