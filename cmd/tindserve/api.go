// Query API surface of tindserve: the wire-form request type shared by
// every query endpoint, the single decode→compile path that turns it
// into an index.QueryOptions, the JSON error envelope, and the handlers
// themselves. GET /search, /reverse and /topk are one handler
// parameterized by mode; POST /query/batch decodes a list of the same
// wire queries and executes them as one index.QueryBatch call so the
// engine amortizes its matrix sweeps across the whole request.
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"tind/internal/core"
	"tind/internal/history"
	"tind/internal/index"
	"tind/internal/obs"
	"tind/internal/timeline"
)

// Error codes of the JSON error envelope. Every failure response has
// the shape {"error": {"code": "...", "message": "..."}}; the code is
// the machine-readable contract (clients branch on it), the message is
// for humans and may change freely.
const (
	codeInvalidParameter = "invalid_parameter" // malformed or out-of-range request input
	codeNotReady         = "not_ready"         // index still building or service draining
	codeSaturated        = "saturated"         // load shed by the concurrency limiter
	codeDeadlineExceeded = "deadline_exceeded" // query deadline expired mid-flight
	codeCanceled         = "canceled"          // client went away before completion
	codeNotImplemented   = "not_implemented"   // endpoint disabled by configuration
	codeRejected         = "rejected"          // semantically invalid ingest batch
	codeInternal         = "internal"          // anything else; check the server log
)

// httpError writes the error envelope with the given status and code.
func httpError(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]interface{}{
		"error": map[string]string{"code": code, "message": err.Error()},
	})
}

// queryError maps a failed index query to its HTTP status and code:
// deadline expiry is a 504 the client can act on, a disconnected client
// gets the 499 convention, anything else is a 500.
func queryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, index.ErrDeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, codeDeadlineExceeded, err)
	case errors.Is(err, index.ErrCanceled):
		httpError(w, statusClientClosedRequest, codeCanceled, err)
	default:
		httpError(w, http.StatusInternalServerError, codeInternal, err)
	}
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		slog.Error("encoding response", "err", err)
	}
}

// rawQuery is the wire form of one query before resolution: attribute
// references as the client sent them, the mode, and the optional search
// knobs. GET endpoints fill it from URL parameters, POST /query/batch
// decodes it from JSON — both then validate through the same compile
// path, so a parameter rejected on one endpoint is rejected identically
// on all of them.
//
// Pointers distinguish "absent" (paper default applies) from "zero".
type rawQuery struct {
	Attr  string   `json:"attr,omitempty"`
	LHS   string   `json:"lhs,omitempty"` // /explain only
	RHS   string   `json:"rhs,omitempty"` // /explain only
	Mode  string   `json:"mode,omitempty"`
	Eps   *float64 `json:"eps,omitempty"`
	Delta *int     `json:"delta,omitempty"`
	K     *int     `json:"k,omitempty"`
}

// decodeRawQuery reads the URL parameters of a GET query endpoint into
// the wire struct. Only syntax is checked here ("is it a number");
// range validation lives in compile so JSON-borne batch entries hit the
// same checks.
func decodeRawQuery(r *http.Request) (rawQuery, error) {
	var raw rawQuery
	qs := r.URL.Query()
	raw.Attr = qs.Get("attr")
	raw.LHS = qs.Get("lhs")
	raw.RHS = qs.Get("rhs")
	if v := qs.Get("eps"); v != "" {
		e, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return raw, fmt.Errorf("bad eps %q", v)
		}
		raw.Eps = &e
	}
	if v := qs.Get("delta"); v != "" {
		d, err := strconv.Atoi(v)
		if err != nil {
			return raw, fmt.Errorf("bad delta %q", v)
		}
		raw.Delta = &d
	}
	if v := qs.Get("k"); v != "" {
		k, err := strconv.Atoi(v)
		if err != nil {
			return raw, fmt.Errorf("bad k %q", v)
		}
		raw.K = &k
	}
	return raw, nil
}

// maxK bounds the k parameter of top-k queries.
const maxK = 1000

// compileParams validates eps/delta against the paper's defaults.
func (c *corpus) compileParams(raw rawQuery) (core.Params, error) {
	p := core.DefaultDays(c.ds.Horizon())
	if raw.Eps != nil {
		if *raw.Eps < 0 {
			return p, fmt.Errorf("bad eps %g: must be non-negative", *raw.Eps)
		}
		p.Epsilon = *raw.Eps
	}
	if raw.Delta != nil {
		if *raw.Delta < 0 {
			return p, fmt.Errorf("bad delta %d: must be non-negative", *raw.Delta)
		}
		p.Delta = timeline.Time(*raw.Delta)
	}
	return p, nil
}

// compile resolves one wire query against the corpus: attribute lookup,
// mode selection and full parameter validation. Every query endpoint —
// single or batched — goes through here, so malformed requests are
// rejected with the same messages everywhere.
func (c *corpus) compile(raw rawQuery) (*history.History, index.QueryOptions, error) {
	var o index.QueryOptions
	q, err := c.resolve(raw.Attr)
	if err != nil {
		return nil, o, err
	}
	p, err := c.compileParams(raw)
	if err != nil {
		return nil, o, err
	}
	o.Params = p
	switch raw.Mode {
	case "", "forward":
		o.Mode = index.ModeForward
	case "reverse":
		o.Mode = index.ModeReverse
	case "topk":
		o.Mode = index.ModeTopK
		o.K = 10
		if raw.K != nil {
			if *raw.K <= 0 || *raw.K > maxK {
				return nil, o, fmt.Errorf("bad k %d: must be in [1,%d]", *raw.K, maxK)
			}
			o.K = *raw.K
		}
		// Top-k ranks by violation weight with an escalating epsilon
		// budget of its own; a client-supplied eps does not apply.
		o.Params = core.Params{Delta: p.Delta, Weight: p.Weight}
	default:
		return nil, o, fmt.Errorf("bad mode %q: want forward, reverse or topk", raw.Mode)
	}
	return q, o, nil
}

// attrResult is one attribute in a JSON response.
type attrResult struct {
	ID     history.AttrID `json:"id"`
	Page   string         `json:"page"`
	Table  string         `json:"table"`
	Column string         `json:"column"`
}

func (c *corpus) attrResult(id history.AttrID) attrResult {
	m := c.ds.Attr(id).Meta()
	return attrResult{ID: id, Page: m.Page, Table: m.Table, Column: m.Column}
}

// resolve finds an attribute by id or page substring. The substring scan
// runs over the precomputed lowercased page titles, keeping the original
// first-match semantics without per-request lowercasing of the corpus.
func (c *corpus) resolve(arg string) (*history.History, error) {
	if arg == "" {
		return nil, fmt.Errorf("missing attr parameter")
	}
	if id, err := strconv.Atoi(arg); err == nil {
		if id < 0 || id >= c.ds.Len() {
			return nil, fmt.Errorf("attribute id %d out of range [0,%d)", id, c.ds.Len())
		}
		return c.ds.Attr(history.AttrID(id)), nil
	}
	needle := strings.ToLower(arg)
	for i, page := range c.pagesLower {
		if strings.Contains(page, needle) {
			return c.ds.Attr(history.AttrID(i)), nil
		}
	}
	return nil, fmt.Errorf("no attribute matches %q", arg)
}

// renderResult builds the response body of one executed query, shaped
// by mode: ranked results for top-k, the id set plus funnel counters
// otherwise. Shared between the single-query endpoints and the per-
// entry bodies of /query/batch.
func (c *corpus) renderResult(q *history.History, o index.QueryOptions, res index.Result) map[string]interface{} {
	if o.Mode == index.ModeTopK {
		type rankedResult struct {
			attrResult
			Violation float64 `json:"violation"`
		}
		results := make([]rankedResult, 0, len(res.Ranked))
		for _, rr := range res.Ranked {
			results = append(results, rankedResult{attrResult: c.attrResult(rr.ID), Violation: rr.Violation})
		}
		return map[string]interface{}{
			"query":   c.attrResult(q.ID()),
			"results": results,
		}
	}
	results := make([]attrResult, 0, len(res.IDs))
	for _, id := range res.IDs {
		results = append(results, c.attrResult(id))
	}
	return map[string]interface{}{
		"query":      c.attrResult(q.ID()),
		"eps":        o.Params.Epsilon,
		"delta":      int(o.Params.Delta),
		"results":    results,
		"elapsed_ms": float64(res.Stats.Elapsed) / float64(time.Millisecond),
		"candidates": res.Stats.InitialCandidates,
		"validated":  res.Stats.Validated,
	}
}

// handleQuery serves GET /search, /reverse and /topk: one body, three
// routes, distinguished only by the mode stamped onto the decoded wire
// query before the shared compile step.
func (s *server) handleQuery(mode string) queryHandler {
	return func(c *corpus, w http.ResponseWriter, r *http.Request) {
		raw, err := decodeRawQuery(r)
		if err != nil {
			httpError(w, http.StatusBadRequest, codeInvalidParameter, err)
			return
		}
		raw.Mode = mode
		q, o, err := c.compile(raw)
		if err != nil {
			httpError(w, http.StatusBadRequest, codeInvalidParameter, err)
			return
		}
		// Tracing is always on; the tail sampler in the middleware decides
		// after completion whether the spans are retained in the wide
		// event, so slow or errored queries keep their trace even when no
		// slow-query threshold was configured.
		o.Trace = true
		res, err := c.idx.Query(r.Context(), q, o)
		noteStats(r, &res.Stats)
		noteQuery(r, obs.EventQuery, mode, 0)
		if err != nil && !errors.Is(err, index.ErrPartialResult) {
			queryError(w, err)
			return
		}
		body := c.renderResult(q, o, res)
		if err != nil {
			// Some shards stayed unreachable after replica retries: the
			// healthy shards' answer is correct but incomplete. 200 with an
			// explicit marker — a silent subset would be indistinguishable
			// from a full answer, and a 500 would throw away good results.
			body["partial"] = true
			body["shards_failed"] = failedShards(res.Stats.PerShard)
		}
		writeJSON(w, body)
	}
}

// failedShards lists the shards whose scatter leg failed, from the
// per-shard attribution of a partial result.
func failedShards(per []index.ShardStat) []int {
	down := []int{}
	for _, st := range per {
		if st.Failed() {
			down = append(down, st.Shard)
		}
	}
	return down
}

// batchRequest is the POST /query/batch body: a list of wire-form
// queries executed as one index.QueryBatch call.
//
//	{"queries": [{"attr": "0", "mode": "forward", "eps": 3},
//	             {"attr": "List of D0", "mode": "topk", "k": 5}]}
type batchRequest struct {
	Queries []rawQuery `json:"queries"`
}

// batchMaxQueries bounds a /query/batch request; larger workloads
// should page, not monopolize the limiter slot.
const batchMaxQueries = 256

// batchMaxBody bounds the /query/batch request body.
const batchMaxBody = 1 << 20

// handleBatch decodes a batchRequest, compiles every entry through the
// same path as the single-query endpoints, and answers with one body
// per entry in request order — each shaped exactly like the matching
// single endpoint's response — plus the batch-level wall time.
func (s *server) handleBatch(c *corpus, w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, batchMaxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, codeInvalidParameter, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Queries) == 0 {
		httpError(w, http.StatusBadRequest, codeInvalidParameter, errors.New("empty query batch"))
		return
	}
	if len(req.Queries) > batchMaxQueries {
		httpError(w, http.StatusBadRequest, codeInvalidParameter,
			fmt.Errorf("batch of %d queries exceeds the limit of %d", len(req.Queries), batchMaxQueries))
		return
	}
	batch := make([]index.BatchQuery, len(req.Queries))
	queries := make([]*history.History, len(req.Queries))
	for i, raw := range req.Queries {
		q, o, err := c.compile(raw)
		if err != nil {
			httpError(w, http.StatusBadRequest, codeInvalidParameter, fmt.Errorf("query %d: %w", i, err))
			return
		}
		// Same middleware contract as handleQuery: every entry traces, the
		// tail sampler decides retention after the batch completes.
		o.Trace = true
		batch[i] = index.BatchQuery{Query: q, Options: o}
		queries[i] = q
	}
	// The aggregate is noted before execution so even an errored or
	// timed-out batch reaches the slow-query log and the event ring with
	// whatever the engine accumulated (stats stay zero if it never ran).
	agg := &index.QueryStats{}
	noteStats(r, agg)
	noteQuery(r, obs.EventBatch, "batch", len(batch))
	start := time.Now()
	results, err := c.idx.QueryBatch(r.Context(), batch, index.BatchOptions{})
	elapsed := time.Since(start)
	*agg = aggregateBatchStats(results, elapsed)
	if err != nil && !errors.Is(err, index.ErrPartialResult) {
		queryError(w, err)
		return
	}
	bodies := make([]map[string]interface{}, len(results))
	for i, res := range results {
		bodies[i] = c.renderResult(queries[i], batch[i].Options, res)
	}
	out := map[string]interface{}{
		"batch_size": len(bodies),
		"elapsed_ms": float64(elapsed) / float64(time.Millisecond),
		"results":    bodies,
	}
	if err != nil {
		// Same contract as the single-query endpoints: a batch executed
		// over a degraded cluster answers 200 with every entry's healthy-
		// shard results and a batch-level partial marker (the scatter legs
		// cover the whole batch, so the failed shards are the same for
		// every entry).
		out["partial"] = true
		out["shards_failed"] = failedShards(agg.PerShard)
	}
	writeJSON(w, out)
}

// aggregateBatchStats folds per-entry batch results into one batch-level
// QueryStats for the slow-query log and the wide event: funnel counts
// and phase timings sum across entries, traces concatenate in entry
// order, and the per-shard attribution is taken from the first entry —
// sharded batch legs cover the whole regrouped batch, so every entry
// reports the same PerShard slice.
func aggregateBatchStats(results []index.Result, elapsed time.Duration) index.QueryStats {
	agg := index.QueryStats{Elapsed: elapsed}
	agg.Timings.Total = elapsed
	for _, res := range results {
		st := res.Stats
		agg.InitialCandidates += st.InitialCandidates
		agg.AfterSlices += st.AfterSlices
		agg.AfterSubsetCheck += st.AfterSubsetCheck
		agg.Validated += st.Validated
		agg.Results += st.Results
		agg.SlicesUsed += st.SlicesUsed
		agg.Timings.MTPrune += st.Timings.MTPrune
		agg.Timings.SlicePrune += st.Timings.SlicePrune
		agg.Timings.SubsetCheck += st.Timings.SubsetCheck
		agg.Timings.Validate += st.Timings.Validate
		agg.Timings.Rank += st.Timings.Rank
		agg.Trace = append(agg.Trace, st.Trace...)
		if agg.PerShard == nil && len(st.PerShard) > 0 {
			agg.PerShard = st.PerShard
		}
	}
	return agg
}

func (s *server) handleExplain(c *corpus, w http.ResponseWriter, r *http.Request) {
	raw, err := decodeRawQuery(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, codeInvalidParameter, err)
		return
	}
	lhs, err := c.resolve(raw.LHS)
	if err != nil {
		httpError(w, http.StatusBadRequest, codeInvalidParameter, fmt.Errorf("lhs: %w", err))
		return
	}
	rhs, err := c.resolve(raw.RHS)
	if err != nil {
		httpError(w, http.StatusBadRequest, codeInvalidParameter, fmt.Errorf("rhs: %w", err))
		return
	}
	p, err := c.compileParams(raw)
	if err != nil {
		httpError(w, http.StatusBadRequest, codeInvalidParameter, err)
		return
	}
	type violation struct {
		FromDay int     `json:"from_day"`
		ToDay   int     `json:"to_day"` // exclusive
		Weight  float64 `json:"weight"`
		Missing string  `json:"missing_value"`
	}
	vios := core.Explain(lhs, rhs, p)
	out := make([]violation, 0, len(vios))
	var total float64
	for _, v := range vios {
		out = append(out, violation{
			FromDay: int(v.Interval.Start),
			ToDay:   int(v.Interval.End),
			Weight:  v.Weight,
			Missing: c.ds.Dict().String(v.Missing),
		})
		total += v.Weight
	}
	writeJSON(w, map[string]interface{}{
		"lhs":             c.attrResult(lhs.ID()),
		"rhs":             c.attrResult(rhs.ID()),
		"violations":      out,
		"total_violation": total,
		"eps":             p.Epsilon,
		"holds":           total <= p.Epsilon,
	})
}

func (s *server) handleAttr(c *corpus, w http.ResponseWriter, r *http.Request) {
	h, err := c.resolve(r.URL.Query().Get("attr"))
	if err != nil {
		httpError(w, http.StatusBadRequest, codeInvalidParameter, err)
		return
	}
	type version struct {
		Day    int      `json:"day"`
		Values []string `json:"values"`
	}
	versions := make([]version, 0, h.NumVersions())
	for i := 0; i < h.NumVersions(); i++ {
		v := h.Version(i)
		versions = append(versions, version{
			Day:    int(v.Start),
			Values: c.ds.Dict().Strings(v.Values),
		})
	}
	writeJSON(w, map[string]interface{}{
		"attr":          c.attrResult(h.ID()),
		"observed_from": int(h.ObservedFrom()),
		"observed_to":   int(h.ObservedUntil()),
		"versions":      versions,
	})
}
