// Command tindserve exposes tIND search over HTTP — the interactive
// exploration scenario of the paper's introduction (suggesting joinable
// tables to a user browsing one) as a small JSON service.
//
// Usage:
//
//	tindserve -corpus corpus.tind -addr :8080
//	tindserve -attrs 5000                      # synthetic corpus
//
// Endpoints:
//
//	GET /search?attr=<id|page-substring>&eps=3&delta=7   Q ⊆ A results
//	GET /reverse?attr=...&eps=3&delta=7                  A ⊆ Q results
//	GET /topk?attr=...&k=10&delta=7                      ranked by violation
//	GET /explain?lhs=...&rhs=...&delta=7                 violated intervals
//	GET /attr?attr=...                                   attribute details
//	GET /stats                                           corpus and index stats
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"tind/internal/core"
	"tind/internal/datagen"
	"tind/internal/history"
	"tind/internal/index"
	"tind/internal/persist"
	"tind/internal/timeline"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		corpusF = flag.String("corpus", "", "binary dataset to serve (default: synthetic)")
		attrs   = flag.Int("attrs", 2000, "synthetic corpus size")
		horizon = flag.Int("horizon", 1500, "synthetic corpus horizon (days)")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var ds *history.Dataset
	if *corpusF != "" {
		f, err := os.Open(*corpusF)
		if err != nil {
			log.Fatal(err)
		}
		ds, err = persist.Read(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		c, err := datagen.Generate(datagen.Config{
			Seed: *seed, Attributes: *attrs, Horizon: timeline.Time(*horizon),
		})
		if err != nil {
			log.Fatal(err)
		}
		ds = c.Dataset
	}

	opt := index.DefaultOptions(ds.Horizon())
	opt.Reverse = true
	opt.Seed = *seed
	start := time.Now()
	idx, err := index.Build(ds, opt)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving %d attributes (index built in %v) on %s",
		ds.Len(), time.Since(start).Round(time.Millisecond), *addr)

	srv := newServer(ds, idx)
	log.Fatal(http.ListenAndServe(*addr, srv.routes()))
}

// server bundles the dataset and index behind the HTTP handlers.
type server struct {
	ds  *history.Dataset
	idx *index.Index
}

func newServer(ds *history.Dataset, idx *index.Index) *server {
	return &server{ds: ds, idx: idx}
}

func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /search", s.handleSearch(false))
	mux.HandleFunc("GET /reverse", s.handleSearch(true))
	mux.HandleFunc("GET /topk", s.handleTopK)
	mux.HandleFunc("GET /explain", s.handleExplain)
	mux.HandleFunc("GET /attr", s.handleAttr)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// attrResult is one attribute in a JSON response.
type attrResult struct {
	ID     history.AttrID `json:"id"`
	Page   string         `json:"page"`
	Table  string         `json:"table"`
	Column string         `json:"column"`
}

func (s *server) attrResult(id history.AttrID) attrResult {
	m := s.ds.Attr(id).Meta()
	return attrResult{ID: id, Page: m.Page, Table: m.Table, Column: m.Column}
}

// resolve finds an attribute by id or page substring.
func (s *server) resolve(arg string) (*history.History, error) {
	if arg == "" {
		return nil, fmt.Errorf("missing attr parameter")
	}
	if id, err := strconv.Atoi(arg); err == nil {
		if id < 0 || id >= s.ds.Len() {
			return nil, fmt.Errorf("attribute id %d out of range [0,%d)", id, s.ds.Len())
		}
		return s.ds.Attr(history.AttrID(id)), nil
	}
	needle := strings.ToLower(arg)
	for _, h := range s.ds.Attrs() {
		if strings.Contains(strings.ToLower(h.Meta().Page), needle) {
			return h, nil
		}
	}
	return nil, fmt.Errorf("no attribute matches %q", arg)
}

// params parses eps/delta query parameters with the paper's defaults.
func (s *server) params(r *http.Request) (core.Params, error) {
	p := core.DefaultDays(s.ds.Horizon())
	if v := r.URL.Query().Get("eps"); v != "" {
		e, err := strconv.ParseFloat(v, 64)
		if err != nil || e < 0 {
			return p, fmt.Errorf("bad eps %q", v)
		}
		p.Epsilon = e
	}
	if v := r.URL.Query().Get("delta"); v != "" {
		d, err := strconv.Atoi(v)
		if err != nil || d < 0 {
			return p, fmt.Errorf("bad delta %q", v)
		}
		p.Delta = timeline.Time(d)
	}
	return p, nil
}

func (s *server) handleSearch(reverse bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		q, err := s.resolve(r.URL.Query().Get("attr"))
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		p, err := s.params(r)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		var res index.Result
		if reverse {
			res, err = s.idx.Reverse(q, p)
		} else {
			res, err = s.idx.Search(q, p)
		}
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		results := make([]attrResult, 0, len(res.IDs))
		for _, id := range res.IDs {
			results = append(results, s.attrResult(id))
		}
		writeJSON(w, map[string]interface{}{
			"query":      s.attrResult(q.ID()),
			"eps":        p.Epsilon,
			"delta":      int(p.Delta),
			"results":    results,
			"elapsed_ms": float64(res.Stats.Elapsed) / float64(time.Millisecond),
			"candidates": res.Stats.InitialCandidates,
			"validated":  res.Stats.Validated,
		})
	}
}

func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	q, err := s.resolve(r.URL.Query().Get("attr"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	p, err := s.params(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	k := 10
	if v := r.URL.Query().Get("k"); v != "" {
		if k, err = strconv.Atoi(v); err != nil || k <= 0 || k > 1000 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad k %q", v))
			return
		}
	}
	ranked, err := s.idx.TopK(q, p.Delta, p.Weight, k)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	type rankedResult struct {
		attrResult
		Violation float64 `json:"violation"`
	}
	results := make([]rankedResult, 0, len(ranked))
	for _, rr := range ranked {
		results = append(results, rankedResult{attrResult: s.attrResult(rr.ID), Violation: rr.Violation})
	}
	writeJSON(w, map[string]interface{}{
		"query":   s.attrResult(q.ID()),
		"results": results,
	})
}

func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	lhs, err := s.resolve(r.URL.Query().Get("lhs"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	rhs, err := s.resolve(r.URL.Query().Get("rhs"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	p, err := s.params(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	type violation struct {
		FromDay int     `json:"from_day"`
		ToDay   int     `json:"to_day"` // exclusive
		Weight  float64 `json:"weight"`
		Missing string  `json:"missing_value"`
	}
	vios := core.Explain(lhs, rhs, p)
	out := make([]violation, 0, len(vios))
	var total float64
	for _, v := range vios {
		out = append(out, violation{
			FromDay: int(v.Interval.Start),
			ToDay:   int(v.Interval.End),
			Weight:  v.Weight,
			Missing: s.ds.Dict().String(v.Missing),
		})
		total += v.Weight
	}
	writeJSON(w, map[string]interface{}{
		"lhs":             s.attrResult(lhs.ID()),
		"rhs":             s.attrResult(rhs.ID()),
		"violations":      out,
		"total_violation": total,
		"eps":             p.Epsilon,
		"holds":           total <= p.Epsilon,
	})
}

func (s *server) handleAttr(w http.ResponseWriter, r *http.Request) {
	h, err := s.resolve(r.URL.Query().Get("attr"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	type version struct {
		Day    int      `json:"day"`
		Values []string `json:"values"`
	}
	versions := make([]version, 0, h.NumVersions())
	for i := 0; i < h.NumVersions(); i++ {
		v := h.Version(i)
		versions = append(versions, version{
			Day:    int(v.Start),
			Values: s.ds.Dict().Strings(v.Values),
		})
	}
	writeJSON(w, map[string]interface{}{
		"attr":          s.attrResult(h.ID()),
		"observed_from": int(h.ObservedFrom()),
		"observed_to":   int(h.ObservedUntil()),
		"versions":      versions,
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.ds.ComputeStats()
	ist := s.idx.Stats()
	writeJSON(w, map[string]interface{}{
		"attributes":       st.Attributes,
		"horizon_days":     int(s.ds.Horizon()),
		"distinct_values":  st.DistinctValues,
		"mean_changes":     st.MeanChanges,
		"mean_cardinality": st.MeanCardinality,
		"index_slices":     ist.Slices,
		"index_bytes":      ist.MemoryBytes,
	})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("tindserve: encoding response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
