// Command tindserve exposes tIND search over HTTP — the interactive
// exploration scenario of the paper's introduction (suggesting joinable
// tables to a user browsing one) as a small JSON service, hardened for
// unsupervised operation: per-request query deadlines, load shedding,
// panic recovery, liveness/readiness probes and graceful drain.
//
// Usage:
//
//	tindserve -corpus corpus.tind -addr :8080
//	tindserve -attrs 5000                      # synthetic corpus
//	tindserve -query-timeout 2s -max-in-flight 32
//
// Endpoints:
//
//	GET /search?attr=<id|page-substring>&eps=3&delta=7   Q ⊆ A results
//	GET /reverse?attr=...&eps=3&delta=7                  A ⊆ Q results
//	GET /topk?attr=...&k=10&delta=7                      ranked by violation
//	POST /query/batch                                    many queries, one batched execution
//	GET /explain?lhs=...&rhs=...&delta=7                 violated intervals
//	GET /attr?attr=...                                   attribute details
//	GET /stats                                           corpus, index and ingestion stats
//	POST /ingest                                         live history deltas (with -wal)
//	GET /metrics                                         Prometheus text (OpenMetrics + exemplars via Accept)
//	GET /debug/events                                    wide-event ring: one structured event per query
//	GET /slo                                             burn-rate status of the declared objectives
//	GET /debug/pprof/*                                   profiling (only with -pprof)
//	GET /healthz                                         process liveness
//	GET /readyz                                          200 once the index is built
//
// The index builds in the background: the server binds and answers
// /healthz immediately, query endpoints shed with 503 + Retry-After
// until /readyz turns 200. Queries run under a deadline derived from
// -query-timeout and abort mid-validation when it expires (504) or when
// the client disconnects. A weighted concurrency limiter sheds excess
// load with 503 + Retry-After instead of queueing. SIGINT/SIGTERM drain
// in-flight requests for up to -drain-timeout before exiting.
//
// Live ingestion: with -wal the server accepts history deltas on
// POST /ingest. A delta batch is validated, appended to the write-ahead
// log and fsynced *before* the 200 — acknowledged deltas survive a kill
// -9. Applied batches fold into the serving index incrementally (shard-
// local refresh) on a dirty-count/dirty-age trigger; between
// acknowledgement and apply the server is boundedly stale, observable
// via /stats (pending records, oldest pending age, WAL lag) and bounded
// by -max-staleness: /readyz turns 503 "degraded" when the oldest
// unapplied delta exceeds it. With -snapshot the ingest loop
// periodically writes an atomic snapshot container so a restart replays
// only the WAL suffix past the snapshot's offset; during that replay
// /readyz reports structured progress. On startup the server prefers
// the snapshot (falling back to -corpus or the synthetic generator) and
// replays the WAL before building the index, so recovered answers match
// a from-scratch rebuild exactly.
//
// Distributed serving: -shard-server -shard-id I -shards N turns the
// process into one shard of an N-way partition, serving scatter legs on
// POST /shard/* (mounted behind the same readiness and shedding
// middleware as the human endpoints); -router "urls;urls" turns it into
// a scatter-gather router over those servers — the same query
// endpoints, answered by fanning out to the shards and merging exactly
// like the in-process sharded engine, with per-leg deadlines
// (-leg-timeout) and bounded replica retries (-leg-retries). A dead
// shard degrades queries to 200 responses marked "partial": true (never
// a silently-shrunken "complete" answer, never a 500) and flips /readyz
// to degraded until a probe reaches the shard again. Both modes are
// read-only (-wal is rejected).
//
// Observability: /metrics serves the process-wide obs registry (query
// phase latencies, candidate funnels, Bloom fill ratios, HTTP counters,
// runtime gauges) in the Prometheus text format — or, when the scraper
// accepts application/openmetrics-text, in OpenMetrics with per-bucket
// exemplars carrying query IDs; /healthz reports p50/p95/p99 query
// latency since start. Every query and batch records one wide event
// (phase timings, per-shard attribution, candidate funnel, error class)
// into a ring served at /debug/events; tracing is always on and a tail
// sampler retains the spans of errored queries and the slowest ~5%, so
// the trace of a tail-latency incident exists even when no slow-query
// threshold was configured. Declarative SLOs (query latency vs
// -slo-latency-threshold, 5xx ratio, ingest staleness vs -max-staleness)
// are evaluated into multi-window burn-rate gauges
// (tind_slo_burn_rate{slo,window}) served at /slo; with
// -slo-burn-degrade a sustained burn flips /readyz to degraded. Logs are
// structured (log/slog); every admitted query gets an ID, echoed in the
// X-Query-ID response header, and queries slower than
// -slow-query-threshold are logged with that ID and their per-phase
// trace. -pprof opt-in exposes the standard /debug/pprof endpoints.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"tind/internal/datagen"
	"tind/internal/history"
	"tind/internal/index"
	"tind/internal/ingest"
	"tind/internal/obs"
	"tind/internal/persist"
	"tind/internal/router"
	"tind/internal/sem"
	"tind/internal/shard"
	"tind/internal/timeline"
	"tind/internal/wal"
)

// HTTP-level instruments. The query-internal metrics (phase latencies,
// candidate funnels) live in internal/index; these cover what the index
// cannot see: shedding, status codes and handler wall time per endpoint.
var (
	mHTTPInFlight = obs.Default().Gauge("tind_http_in_flight",
		"Weighted in-flight query load admitted by the limiter.")
	mHTTPShed = func(reason string) *obs.Counter {
		return obs.Default().Counter("tind_http_shed_total",
			"Requests shed with 503, by reason.", obs.L("reason", reason))
	}
	mSlowQueries = obs.Default().Counter("tind_http_slow_queries_total",
		"Queries that exceeded -slow-query-threshold.")
	// mQuerySeconds aggregates admitted query latency across endpoints;
	// /healthz and the slow-query log derive their p50/p95/p99 from it.
	mQuerySeconds = obs.Default().Histogram("tind_http_query_seconds",
		"Wall time of admitted query requests, all endpoints combined.",
		obs.LatencyBuckets)
)

func mHTTPRequests(endpoint string, code int) *obs.Counter {
	return obs.Default().Counter("tind_http_requests_total",
		"Query requests served, by endpoint and status code.",
		obs.L("endpoint", endpoint), obs.L("code", strconv.Itoa(code)))
}

func mHTTPSeconds(endpoint string) *obs.Histogram {
	return obs.Default().Histogram("tind_http_request_seconds",
		"Handler wall time per query endpoint.", obs.LatencyBuckets,
		obs.L("endpoint", endpoint))
}

// statusClientClosedRequest is nginx's non-standard code for "client
// went away before we finished"; it keeps abandoned queries apart from
// real timeouts and server errors in access logs.
const statusClientClosedRequest = 499

// topKWeight is the limiter weight of /topk requests: the escalating
// search may re-run the underlying query several times, so one /topk
// costs about as much as a few plain searches.
const topKWeight = 2

// batchWeight is the limiter weight of /query/batch requests. A batch
// runs many sub-queries in one call, but the engine's row-major sweeps
// amortize most of the per-query work, so a batch is charged like a few
// plain searches rather than per sub-query.
const batchWeight = 4

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		corpusF      = flag.String("corpus", "", "binary dataset to serve (default: synthetic)")
		attrs        = flag.Int("attrs", 2000, "synthetic corpus size")
		horizon      = flag.Int("horizon", 1500, "synthetic corpus horizon (days)")
		seed         = flag.Int64("seed", 1, "random seed")
		shards       = flag.Int("shards", 1, "serve through a sharded scatter-gather index with this many shards (1 = monolithic)")
		shardServer  = flag.Bool("shard-server", false, "serve one shard of an N-way partition over the /shard RPC surface (with -shards N and -shard-id)")
		shardID      = flag.Int("shard-id", 0, "which shard this server owns (with -shard-server)")
		routerF      = flag.String("router", "", "scatter-gather router over shard servers: shard URL groups separated by ';', replica URLs within a shard by ',' (e.g. \"http://a:8081,http://a2:8081;http://b:8081\")")
		legTimeout   = flag.Duration("leg-timeout", 5*time.Second, "router: per-shard scatter-leg deadline (0 = none)")
		legRetries   = flag.Int("leg-retries", 1, "router: replica retries per scatter leg beyond the first attempt")
		queryTimeout = flag.Duration("query-timeout", 10*time.Second, "per-request query deadline (0 = none)")
		maxInFlight  = flag.Int64("max-in-flight", 0, "concurrent query weight admitted before shedding with 503 (0 = 4×GOMAXPROCS)")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
		slowQuery    = flag.Duration("slow-query-threshold", time.Second, "log queries slower than this with their phase breakdown (0 = disabled)")
		pprofF       = flag.Bool("pprof", false, "expose /debug/pprof endpoints (off by default: profiling leaks internals)")
		walF         = flag.String("wal", "", "write-ahead log path: enables POST /ingest and startup WAL replay")
		snapshotF    = flag.String("snapshot", "", "snapshot container directory: loaded (over -corpus) at startup, written periodically by the ingest loop")
		snapEvery    = flag.Int("snapshot-every", 4096, "applied records between snapshots (0 = never snapshot)")
		maxStale     = flag.Duration("max-staleness", 30*time.Second, "flip /readyz to degraded when the oldest unapplied delta exceeds this (0 = never)")
		maxDirty     = flag.Int("ingest-max-dirty", 256, "apply pending deltas once this many records queue")
		maxDirtyAge  = flag.Duration("ingest-max-dirty-age", 2*time.Second, "apply pending deltas once the oldest queues this long")
		resliceCov   = flag.Float64("reslice-min-coverage", 0.5, "background-reslice the index when slice-pruning coverage drops below this (0 = never)")
		sloLatency   = flag.Duration("slo-latency-threshold", 500*time.Millisecond, "query_latency SLO: queries slower than this burn error budget")
		sloInterval  = flag.Duration("slo-interval", 10*time.Second, "SLO burn-rate evaluation interval")
		sloDegrade   = flag.Float64("slo-burn-degrade", 0, "flip /readyz to degraded when every SLO window burns at least this fast (0 = never)")
	)
	flag.Parse()

	cfg := config{
		queryTimeout:   *queryTimeout,
		maxInFlight:    *maxInFlight,
		drainTimeout:   *drainTimeout,
		slowQuery:      *slowQuery,
		pprof:          *pprofF,
		maxStaleness:   *maxStale,
		sloLatency:     *sloLatency,
		sloInterval:    *sloInterval,
		sloBurnDegrade: *sloDegrade,
		shardRPC:       *shardServer,
		router:         *routerF != "",
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	slog.SetDefault(logger)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen", "err", err)
		os.Exit(1)
	}
	logger.Info("listening, index building in background", "addr", ln.Addr().String())

	load := func(rp *replayProgress) (*serving, error) {
		return loadServing(corpusConfig{
			corpus: *corpusF, attrs: *attrs, horizon: *horizon, seed: *seed, shards: *shards,
			shardServer: *shardServer, shardID: *shardID,
			router: *routerF, legTimeout: *legTimeout, legRetries: *legRetries,
			wal: *walF, snapshot: *snapshotF, snapshotEvery: *snapEvery,
			maxDirty: *maxDirty, maxDirtyAge: *maxDirtyAge,
			resliceMinCoverage: *resliceCov,
		}, rp)
	}
	if err := run(ctx, cfg, ln, load); err != nil {
		logger.Error("serve", "err", err)
		os.Exit(1)
	}
	logger.Info("drained, bye")
}

// config holds the robustness and observability knobs of the service.
type config struct {
	queryTimeout time.Duration
	maxInFlight  int64
	drainTimeout time.Duration
	slowQuery    time.Duration
	pprof        bool
	// maxStaleness flips /readyz to degraded when the oldest acknowledged
	// but unapplied delta is older than this; 0 disables the check.
	maxStaleness time.Duration
	// sloLatency is the query_latency objective's threshold: queries
	// slower than this count against the error budget.
	sloLatency time.Duration
	// sloInterval is how often the SLO engine re-evaluates burn rates.
	sloInterval time.Duration
	// sloBurnDegrade flips /readyz to degraded when every burn-rate
	// window of some objective is at least this high; 0 disables.
	sloBurnDegrade float64
	// shardRPC mounts the /shard/* RPC surface (shard-server mode).
	shardRPC bool
	// router declares the router_shard_availability SLO (router mode).
	router bool
}

// run serves on ln until ctx is done (SIGINT/SIGTERM in production),
// then drains in-flight requests for up to cfg.drainTimeout. The corpus
// loads (and the WAL replays) in a background goroutine so the process
// answers health probes from the first moment; a load failure tears the
// server down. After the drain, the ingester flushes and the WAL closes
// so acknowledged deltas are applied or at minimum durable.
func run(ctx context.Context, cfg config, ln net.Listener, load func(rp *replayProgress) (*serving, error)) error {
	s := newServer(cfg)

	// Periodic runtime sampling keeps goroutine count, heap watermark and
	// GC pauses on /metrics for the whole life of the process.
	stopSampler := obs.NewRuntimeSampler(obs.Default()).Start(10 * time.Second)
	defer stopSampler()

	// The SLO engine ticks for the whole life of the process so the burn
	// windows accumulate history even while the index is still building.
	stopSLO := s.slo.Start()
	defer stopSLO()

	writeTimeout := time.Minute
	if cfg.queryTimeout > 0 {
		// Leave headroom beyond the query deadline so a timed-out query
		// still delivers its JSON 504 before the connection is cut.
		writeTimeout = cfg.queryTimeout + 10*time.Second
	}
	httpSrv := &http.Server{
		Handler:           s.routes(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	errCh := make(chan error, 2)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	go func() {
		start := time.Now()
		sv, err := load(&s.replay)
		if err != nil {
			errCh <- fmt.Errorf("corpus load: %w", err)
			return
		}
		s.install(sv)
		s.log.Info("ready", "attributes", sv.ds.Len(),
			"build_time", time.Since(start).Round(time.Millisecond),
			"ingest", sv.ing != nil)
	}()

	select {
	case err := <-errCh:
		httpSrv.Close()
		s.closeServing()
		return err
	case <-ctx.Done():
	}

	s.log.Info("shutdown requested, draining", "grace", cfg.drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	err := httpSrv.Shutdown(drainCtx)
	if cerr := s.closeServing(); err == nil {
		err = cerr
	}
	if err != nil {
		httpSrv.Close()
		return fmt.Errorf("drain incomplete after %v: %w", cfg.drainTimeout, err)
	}
	return nil
}

// closeServing flushes the ingester and closes the WAL, if installed.
func (s *server) closeServing() error {
	c := s.corpus.Load()
	if c == nil || c.ing == nil {
		return nil
	}
	err := c.ing.Close()
	if c.wal != nil {
		if cerr := c.wal.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// queryIndex is the serving contract the handlers need: the monolithic
// index.Index and the sharded scatter-gather shard.ShardedIndex both
// satisfy it, so -shards swaps the engine without touching a handler.
type queryIndex interface {
	Query(ctx context.Context, q *history.History, o index.QueryOptions) (index.Result, error)
	QueryBatch(ctx context.Context, batch []index.BatchQuery, o index.BatchOptions) ([]index.Result, error)
	Stats() index.BuildStats
}

// corpusConfig is everything loadServing needs to assemble the serving
// state: corpus source, engine layout and the live-ingestion knobs.
type corpusConfig struct {
	corpus  string
	attrs   int
	horizon int
	seed    int64
	shards  int
	// shardServer serves shard shardID of the shards-way partition over
	// the /shard RPC surface instead of building a full serving engine.
	shardServer bool
	shardID     int
	// router scatter-gathers over remote shard servers: the -router
	// topology spec, with the per-leg deadline and replica retry budget.
	router     string
	legTimeout time.Duration
	legRetries int
	wal        string
	snapshot      string
	snapshotEvery int
	maxDirty      int
	maxDirtyAge   time.Duration
	// resliceMinCoverage arms the ingest loop's background re-slicing:
	// when slice-pruning coverage falls below it, the engine reslices and
	// coverage returns to 1 without blocking queries. 0 disables.
	resliceMinCoverage float64
}

// serving is the full serving state a load produces: dataset, engine and
// — with -wal — the write path (ingester + open log).
type serving struct {
	ds  *history.Dataset
	idx queryIndex
	ing *ingest.Ingester // nil without -wal
	wal *wal.Log         // nil without -wal; owned by the serving state
	// shardH is the /shard RPC surface in shard-server mode, mounted by
	// routes behind the readiness/shedding middleware; nil otherwise.
	shardH http.Handler
	// rtr is the scatter-gather engine in router mode — idx points at it
	// too; the typed field is for degradation probes on /readyz.
	rtr *router.Router
}

// replayProgress publishes WAL-replay progress for /readyz while the
// corpus loads: total records to replay, records done, and the start
// time for a rate estimate.
type replayProgress struct {
	active    atomic.Bool
	total     atomic.Int64
	done      atomic.Int64
	startNano atomic.Int64
}

// loadDataset reads or generates the base dataset. The snapshot
// container — written by the ingest loop — wins over -corpus: it is the
// same corpus, further along the WAL. The returned offset is the WAL
// position the dataset already covers.
func loadDataset(cc corpusConfig) (*history.Dataset, int64, error) {
	if cc.snapshot != "" {
		ds, man, err := persist.OpenSnapshot(cc.snapshot)
		if err == nil {
			return ds, man.WALOffset, nil
		}
		if !errors.Is(err, os.ErrNotExist) {
			return nil, 0, fmt.Errorf("snapshot: %w", err)
		}
		// No snapshot yet — first boot; fall through to the corpus.
	}
	switch {
	case cc.corpus != "" && persist.IsSharded(cc.corpus):
		ds, _, err := persist.ReadSharded(cc.corpus)
		return ds, 0, err
	case cc.corpus != "":
		f, err := os.Open(cc.corpus)
		if err != nil {
			return nil, 0, err
		}
		ds, err := persist.Read(f)
		f.Close()
		return ds, 0, err
	default:
		c, err := datagen.Generate(datagen.Config{
			Seed: cc.seed, Attributes: cc.attrs, Horizon: timeline.Time(cc.horizon),
		})
		if err != nil {
			return nil, 0, err
		}
		return c.Dataset, 0, nil
	}
}

// loadServing assembles the serving state: dataset (snapshot, corpus or
// synthetic), WAL recovery replay, index build — the monolith by
// default, an N-shard partition with -shards N > 1 (a -corpus container's
// partitioning is independent of -shards, which only picks the serving
// engine) — and, with -wal, the live-ingestion write path. Two special
// modes replace the local engine: -shard-server builds and serves one
// shard of the partition, -router builds no index at all and
// scatter-gathers over remote shard servers. Both are read-only: live
// ingestion writes through an engine that owns the whole index, which
// neither mode has.
func loadServing(cc corpusConfig, rp *replayProgress) (*serving, error) {
	if cc.shardServer && cc.router != "" {
		return nil, errors.New("-shard-server and -router are mutually exclusive")
	}
	if (cc.shardServer || cc.router != "") && cc.wal != "" {
		return nil, errors.New("-wal live ingestion requires a full local engine; shard-server and router modes are read-only")
	}
	ds, walOffset, err := loadDataset(cc)
	if err != nil {
		return nil, err
	}

	var log *wal.Log
	if cc.wal != "" {
		log, err = wal.Open(cc.wal, wal.Options{Sync: wal.SyncAlways})
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		total, err := log.CountFrom(walOffset)
		if err != nil {
			log.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		if rp != nil && total > 0 {
			rp.total.Store(int64(total))
			rp.done.Store(0)
			rp.startNano.Store(time.Now().UnixNano())
			rp.active.Store(true)
			defer rp.active.Store(false)
		}
		if _, n, err := ingest.Replay(ds, log, walOffset, func(replayed int, _ int64) {
			if rp != nil {
				rp.done.Store(int64(replayed))
			}
		}); err != nil {
			log.Close()
			return nil, fmt.Errorf("wal replay: %w", err)
		} else if n > 0 {
			slog.Info("wal replayed", "records", n, "from_offset", walOffset)
		}
	}

	opt := index.DefaultOptions(ds.Horizon())
	opt.Reverse = true
	opt.Seed = cc.seed
	sv := &serving{ds: ds, wal: log}
	switch {
	case cc.shardServer:
		if cc.shards < 1 || cc.shardID < 0 || cc.shardID >= cc.shards {
			return nil, fmt.Errorf("-shard-id %d out of range [0,%d)", cc.shardID, cc.shards)
		}
		sg, err := shard.BuildSingle(ds, shard.Options{
			Shards: cc.shards, Seed: cc.seed, Index: shard.PartitionOptions(opt, cc.shards),
		}, cc.shardID)
		if err != nil {
			return nil, err
		}
		ss := router.NewShardServer(sg)
		sv.idx, sv.shardH = ss, ss.Handler()
		return sv, nil
	case cc.router != "":
		topo, err := parseRouterSpec(cc.router)
		if err != nil {
			return nil, err
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		rt, err := router.New(ctx, router.Options{
			Shards: topo, LegTimeout: cc.legTimeout, Retries: cc.legRetries,
		})
		if err != nil {
			return nil, fmt.Errorf("router: %w", err)
		}
		// The router resolves and renders against its own copy of the
		// corpus; a mismatch with the cluster's would silently answer for
		// the wrong attributes.
		if info := rt.Info(); info.Attributes != ds.Len() || info.Horizon != int64(ds.Horizon()) {
			return nil, fmt.Errorf("router: local corpus (%d attributes, horizon %d) does not match the cluster's (%d, %d) — start the router with the same corpus its shard servers serve",
				ds.Len(), ds.Horizon(), info.Attributes, info.Horizon)
		}
		sv.idx, sv.rtr = rt, rt
		return sv, nil
	}
	var eng ingest.Engine
	if cc.shards > 1 {
		sx, err := shard.Build(ds, shard.Options{
			Shards: cc.shards, Seed: cc.seed, Index: shard.PartitionOptions(opt, cc.shards),
		})
		if err != nil {
			closeLog(log)
			return nil, err
		}
		sv.idx, eng = sx, sx
	} else {
		idx, err := index.Build(ds, opt)
		if err != nil {
			closeLog(log)
			return nil, err
		}
		sv.idx, eng = idx, idx
	}

	if log != nil {
		iopt := ingest.Options{
			MaxDirty: cc.maxDirty, MaxDirtyAge: cc.maxDirtyAge,
			ResliceMinCoverage: cc.resliceMinCoverage,
		}
		if cc.snapshot != "" && cc.snapshotEvery > 0 {
			snapShards := cc.shards
			if snapShards < 1 {
				snapShards = 1
			}
			iopt.Snapshot = ingest.SnapshotConfig{
				Dir: cc.snapshot, Shards: snapShards, Seed: cc.seed, Every: cc.snapshotEvery,
			}
		}
		sv.ing = ingest.New(eng, ds, log, iopt)
		sv.ing.Start()
	}
	return sv, nil
}

func closeLog(log *wal.Log) {
	if log != nil {
		log.Close()
	}
}

// parseRouterSpec parses the -router topology: shard URL groups
// separated by semicolons, replica URLs within a shard by commas. Group
// order is shard order — group i must be the servers started with
// -shard-id i (router.New verifies this against each server's
// /shard/info).
func parseRouterSpec(spec string) ([][]string, error) {
	var topo [][]string
	for i, group := range strings.Split(spec, ";") {
		var reps []string
		for _, u := range strings.Split(group, ",") {
			if u = strings.TrimSpace(u); u != "" {
				reps = append(reps, u)
			}
		}
		if len(reps) == 0 {
			return nil, fmt.Errorf("router spec: shard %d has no replica URLs", i)
		}
		topo = append(topo, reps)
	}
	return topo, nil
}

// corpus is the serving state, swapped in atomically once the index
// build completes. Without live ingestion it is immutable; with -wal the
// dataset mutates under the ingester's lock, and handlers route dataset
// reads through view.
type corpus struct {
	ds  *history.Dataset
	idx queryIndex
	ing *ingest.Ingester // nil without -wal
	wal *wal.Log         // nil without -wal
	// pagesLower caches the lowercased page title per attribute so
	// resolve's substring match does not re-lowercase every title on
	// every request.
	pagesLower []string
	// shardH and rtr carry the distributed-mode state through the
	// atomic corpus swap: the /shard RPC surface (shard-server mode)
	// and the typed router handle for /readyz probes (router mode).
	shardH http.Handler
	rtr    *router.Router
}

// newCorpus derives every cached view (currently the lowercased page
// titles resolve scans) from the dataset at construction time. Building
// the cache here rather than at the install site means a future second
// caller that swaps the corpus pointer cannot forget to invalidate it:
// a corpus and its caches are created together or not at all.
func newCorpus(sv *serving) *corpus {
	pages := make([]string, sv.ds.Len())
	for i, h := range sv.ds.Attrs() {
		pages[i] = strings.ToLower(h.Meta().Page)
	}
	return &corpus{ds: sv.ds, idx: sv.idx, ing: sv.ing, wal: sv.wal, pagesLower: pages,
		shardH: sv.shardH, rtr: sv.rtr}
}

// view runs fn with the dataset quiescent. With live ingestion the
// ingester's read lock excludes the apply step's clone-and-replace swap;
// without it the dataset is immutable and fn runs directly.
func (c *corpus) view(fn func(ds *history.Dataset)) {
	if c.ing != nil {
		c.ing.View(fn)
		return
	}
	fn(c.ds)
}

// server bundles the serving state with the robustness machinery.
type server struct {
	corpus       atomic.Pointer[corpus]
	limiter      *sem.Weighted
	queryTimeout time.Duration
	slowQuery    time.Duration
	pprof        bool
	// log receives the structured service log (slow queries, lifecycle);
	// tests substitute a handler writing to a capture buffer.
	log *slog.Logger
	// queryID numbers admitted query requests; the ID is returned in the
	// X-Query-ID response header and attached to the slow-query log so a
	// client-reported request can be matched to its trace.
	queryID atomic.Uint64
	// replay publishes WAL-replay progress for /readyz while the corpus
	// loads after a restart.
	replay replayProgress
	// maxStaleness flips /readyz to degraded when ingestion falls behind.
	maxStaleness time.Duration
	// sampler decides after each query completes whether its trace is
	// retained in the wide event — errored queries and the slowest tail
	// always keep theirs.
	sampler *obs.TailSampler
	// slo evaluates the declared objectives into burn-rate gauges; with
	// sloBurnDegrade > 0 a sustained burn also degrades /readyz.
	slo            *obs.SLOEngine
	sloBurnDegrade float64
	// shardRPC mounts the /shard/* scatter-leg surface (shard-server mode).
	shardRPC bool
}

func newServer(cfg config) *server {
	capacity := cfg.maxInFlight
	if capacity <= 0 {
		capacity = int64(4 * runtime.GOMAXPROCS(0))
	}
	return &server{
		limiter:        sem.New(capacity),
		queryTimeout:   cfg.queryTimeout,
		slowQuery:      cfg.slowQuery,
		pprof:          cfg.pprof,
		maxStaleness:   cfg.maxStaleness,
		sampler:        obs.NewTailSampler(tailSamplePercentile, tailSampleWindow),
		slo:            newSLOEngine(cfg),
		sloBurnDegrade: cfg.sloBurnDegrade,
		shardRPC:       cfg.shardRPC,
		log:            slog.Default(),
	}
}

// install publishes the serving state, flipping /readyz to 200 and
// letting query endpoints through.
func (s *server) install(sv *serving) {
	s.corpus.Store(newCorpus(sv))
}

// queryHandler is an endpoint that needs the corpus; the query
// middleware hands it the current snapshot.
type queryHandler func(c *corpus, w http.ResponseWriter, r *http.Request)

// viewed runs a handler under the corpus view so the dataset is
// quiescent for its whole body — resolution, query and rendering all
// read it, and with live ingestion the apply step mutates attribute
// pointers, the horizon and the value dictionary. Lock order matches
// the apply path (dataset lock before engine lock), so queries and
// applies interleave without deadlock. /ingest must NOT be viewed: its
// Submit acquires the same dataset lock, and nesting read locks around
// a queued writer deadlocks.
func viewed(h queryHandler) queryHandler {
	return func(c *corpus, w http.ResponseWriter, r *http.Request) {
		c.view(func(*history.Dataset) { h(c, w, r) })
	}
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.Handle("GET /search", s.query(1, viewed(s.handleQuery("forward"))))
	mux.Handle("GET /reverse", s.query(1, viewed(s.handleQuery("reverse"))))
	mux.Handle("GET /topk", s.query(topKWeight, viewed(s.handleQuery("topk"))))
	mux.Handle("POST /query/batch", s.query(batchWeight, viewed(s.handleBatch)))
	mux.Handle("GET /explain", s.query(1, viewed(s.handleExplain)))
	mux.Handle("GET /attr", s.query(1, viewed(s.handleAttr)))
	// /stats is not viewed: it reads ingester stats, whose lock is taken
	// before the dataset lock on the submit path — see handleStats.
	mux.Handle("GET /stats", s.query(1, s.handleStats))
	if s.shardRPC {
		// Scatter legs from the router go through the same readiness and
		// shedding middleware as the human endpoints: a shard that is
		// still building answers 503 not_ready in the shared envelope,
		// which the router classifies as a degradable leg (retry the
		// replica, then a typed partial result) rather than a hard error.
		mux.Handle("POST /shard/query", s.query(1, s.handleShardRPC))
		mux.Handle("POST /shard/batch", s.query(batchWeight, s.handleShardRPC))
		mux.Handle("POST /shard/allpairs", s.query(batchWeight, s.handleShardRPC))
		mux.Handle("GET /shard/info", s.query(1, s.handleShardRPC))
		mux.Handle("GET /shard/stats", s.query(1, s.handleShardRPC))
	}
	mux.Handle("POST /ingest", s.query(1, s.handleIngest))
	// /metrics, /debug/events and /slo are deliberately outside the query
	// middleware: scrapes and debugging must work while the index is still
	// building and must never be shed — a degraded server is exactly when
	// they matter.
	mux.HandleFunc("GET /metrics", handleMetrics)
	mux.HandleFunc("GET /debug/events", s.handleEvents)
	mux.HandleFunc("GET /slo", s.handleSLO)
	if s.pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return recoverJSON(mux)
}

// handleShardRPC delegates a /shard/* request to the shard server's own
// handler (wire decode, ownership resolution, global-id mapping). The
// dataset is immutable in shard-server mode (-wal is rejected), so no
// view is needed.
func (s *server) handleShardRPC(c *corpus, w http.ResponseWriter, r *http.Request) {
	c.shardH.ServeHTTP(w, r)
}

// handleMetrics serves the process-wide registry. Scrapers that accept
// OpenMetrics get that rendering — it carries the per-bucket exemplars
// linking latency spikes to query IDs in /debug/events — everyone else
// gets the Prometheus 0.0.4 text format.
func handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsOpenMetrics(r) {
		w.Header().Set("Content-Type", openMetricsContentType)
		if err := obs.Default().WriteOpenMetrics(w); err != nil {
			slog.Error("writing metrics", "err", err)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.Default().WritePrometheus(w); err != nil {
		slog.Error("writing metrics", "err", err)
	}
}

// statusRecorder captures the status code a handler writes so the query
// middleware can label its metrics and the slow-query log with it.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// queryNote carries per-query diagnostics from a handler back to the
// query middleware, which owns the slow-query log and the wide-event
// record.
type queryNote struct {
	stats *index.QueryStats
	// kind and mode classify the wide event (obs.EventQuery with
	// mode=forward/reverse/topk, or obs.EventBatch); batch is the batch
	// size for obs.EventBatch.
	kind  string
	mode  string
	batch int
}

type noteKey struct{}

// noteStats records the query stats of the request for the slow-query
// log and the wide event. Handlers that run an index query call it; the
// others stay silent, a slow request logs without a phase breakdown and
// no event is recorded.
func noteStats(r *http.Request, st *index.QueryStats) {
	if n, ok := r.Context().Value(noteKey{}).(*queryNote); ok {
		n.stats = st
	}
}

// noteQuery classifies the request for its wide event. Only requests
// that also noteStats emit one.
func noteQuery(r *http.Request, kind, mode string, batch int) {
	if n, ok := r.Context().Value(noteKey{}).(*queryNote); ok {
		n.kind = kind
		n.mode = mode
		n.batch = batch
	}
}

// traceSummary renders the per-phase breakdown of a slow query for the
// log: the Timings aggregate plus the ordered trace spans if the query
// ran with tracing enabled.
func traceSummary(st *index.QueryStats) string {
	t := st.Timings
	s := fmt.Sprintf("phases[mt_prune=%v slice_prune=%v subset_check=%v validate=%v rank=%v] candidates=%d validated=%d results=%d",
		t.MTPrune.Round(time.Microsecond), t.SlicePrune.Round(time.Microsecond),
		t.SubsetCheck.Round(time.Microsecond), t.Validate.Round(time.Microsecond),
		t.Rank.Round(time.Microsecond),
		st.InitialCandidates, st.Validated, st.Results)
	if len(st.Trace) > 0 {
		spans := make([]string, len(st.Trace))
		for i, sp := range st.Trace {
			spans[i] = sp.String()
		}
		s += " trace[" + strings.Join(spans, " ") + "]"
	}
	return s
}

// Shed reasons for retryAfterHint: why a request is being turned away.
const (
	shedNotReady  = "not_ready"
	shedSaturated = "saturated"
	shedDegraded  = "degraded"
)

// Bounds of the build-in-progress Retry-After hint, in seconds.
const (
	retryHintBuild = 5
	retryHintMax   = 30
)

// retryAfterHint derives the Retry-After value from the server's actual
// state instead of a fixed "1". While the corpus is loading, a retry in
// one second will almost certainly shed again: a plain build takes
// seconds, so the hint says so, and a WAL recovery replay with a
// measured rate predicts its remaining time (bounded to [1,30]s — a
// hint is a hint, not a promise). Saturation stays at 1s: capacity
// frees as soon as an in-flight query completes. Degradation sits at
// 2s: the ingest apply loop and the router's shard probes resolve on a
// seconds cadence.
func (s *server) retryAfterHint(reason string) string {
	switch reason {
	case shedSaturated:
		return "1"
	case shedDegraded:
		return "2"
	}
	if s.replay.active.Load() {
		total, done := s.replay.total.Load(), s.replay.done.Load()
		elapsed := time.Since(time.Unix(0, s.replay.startNano.Load())).Seconds()
		if done > 0 && elapsed > 0 && total > done {
			rate := float64(done) / elapsed
			hint := int(math.Ceil(float64(total-done) / rate))
			if hint < 1 {
				hint = 1
			}
			if hint > retryHintMax {
				hint = retryHintMax
			}
			return strconv.Itoa(hint)
		}
	}
	return strconv.Itoa(retryHintBuild)
}

// query gates an endpoint behind readiness, the concurrency limiter and
// the per-request deadline. Not-ready and saturated both shed with 503 +
// Retry-After rather than queueing: the client retrying in a second is
// cheaper than a goroutine parked on a semaphore. Admitted requests are
// timed and counted per endpoint and status; those slower than the
// slow-query threshold are logged with their phase breakdown.
func (s *server) query(weight int64, h queryHandler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		endpoint := r.URL.Path
		c := s.corpus.Load()
		if c == nil {
			mHTTPShed("not_ready").Inc()
			mHTTPRequests(endpoint, http.StatusServiceUnavailable).Inc()
			w.Header().Set("Retry-After", s.retryAfterHint(shedNotReady))
			httpError(w, http.StatusServiceUnavailable, codeNotReady, errors.New("index still building, retry shortly"))
			return
		}
		if !s.limiter.TryAcquire(weight) {
			mHTTPShed("saturated").Inc()
			mHTTPRequests(endpoint, http.StatusServiceUnavailable).Inc()
			w.Header().Set("Retry-After", s.retryAfterHint(shedSaturated))
			httpError(w, http.StatusServiceUnavailable, codeSaturated, errors.New("server saturated, retry shortly"))
			return
		}
		mHTTPInFlight.Add(float64(weight))
		defer func() {
			s.limiter.Release(weight)
			mHTTPInFlight.Add(-float64(weight))
		}()
		if s.queryTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.queryTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		qid := s.queryID.Add(1)
		w.Header().Set("X-Query-ID", strconv.FormatUint(qid, 10))
		note := &queryNote{}
		r = r.WithContext(context.WithValue(r.Context(), noteKey{}, note))
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(c, sr, r)
		elapsed := time.Since(start)
		mHTTPRequests(endpoint, sr.status).Inc()
		mHTTPSeconds(endpoint).ObserveDuration(elapsed)
		// The query-latency observation carries the query ID as an
		// exemplar, so a p99 spike on the histogram links straight to the
		// offending wide event in /debug/events.
		mQuerySeconds.ObserveExemplar(elapsed.Seconds(), obs.L("query_id", strconv.FormatUint(qid, 10)))
		if note.stats != nil {
			s.recordQueryEvent(note, qid, endpoint, sr.status, elapsed)
		}
		if s.slowQuery > 0 && elapsed >= s.slowQuery {
			mSlowQueries.Inc()
			attrs := []any{
				"qid", qid,
				"method", r.Method,
				"url", r.URL.RequestURI(),
				"status", sr.status,
				"elapsed", elapsed.Round(time.Microsecond),
				"threshold", s.slowQuery,
				// Process-lifetime latency estimates put this one query in
				// context: a slow query near p99 is the tail behaving as
				// measured, one far beyond it is an outlier worth a look.
				"p95_ms", quantileMillis(0.95),
				"p99_ms", quantileMillis(0.99),
			}
			if note.stats != nil {
				attrs = append(attrs, "trace", traceSummary(note.stats))
			}
			s.log.Warn("slow query", attrs...)
		}
	})
}

// recoverJSON turns a handler panic into a structured JSON 500 and a
// stack trace in the log, keeping the process alive. http.ErrAbortHandler
// passes through — it is the sanctioned way to abort a response.
func recoverJSON(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			slog.Error("panic serving request", "method", r.Method, "path", r.URL.Path,
				"panic", rec, "stack", string(debug.Stack()))
			httpError(w, http.StatusInternalServerError, codeInternal, fmt.Errorf("internal error: %v", rec))
		}()
		next.ServeHTTP(w, r)
	})
}

// quantileMillis estimates a process-lifetime query latency quantile in
// milliseconds, rounded to the microsecond. Callers must guard against
// an empty histogram (the estimate would be NaN, which JSON and the log
// both handle badly).
func quantileMillis(q float64) float64 {
	return math.Round(1e6*mQuerySeconds.Quantile(q)) / 1e3
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]interface{}{"status": "ok"}
	// Latency quantiles since process start, from the aggregate query
	// histogram. Only present once a query has been served: quantiles of
	// an empty histogram are NaN, which won't marshal.
	if n := mQuerySeconds.Count(); n > 0 {
		body["queries_served"] = n
		body["query_latency_ms"] = map[string]float64{
			"p50": quantileMillis(0.50),
			"p95": quantileMillis(0.95),
			"p99": quantileMillis(0.99),
		}
	}
	writeJSON(w, body)
}

// handleReadyz reports serving readiness. Three states: not ready while
// the corpus loads (with structured WAL-replay progress when a recovery
// replay is running), degraded when live ingestion has fallen behind the
// -max-staleness bound, its last apply failed, or (with -slo-burn-degrade)
// every burn-rate window of some SLO is exhausting the error budget, and
// ready otherwise.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	c := s.corpus.Load()
	if c == nil {
		w.Header().Set("Retry-After", s.retryAfterHint(shedNotReady))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		body := map[string]interface{}{"status": "starting", "error": "index still building"}
		if s.replay.active.Load() {
			total, done := s.replay.total.Load(), s.replay.done.Load()
			replay := map[string]interface{}{
				"records_total":    total,
				"records_replayed": done,
			}
			if total > 0 {
				replay["percent"] = math.Round(10000*float64(done)/float64(total)) / 100
			}
			if elapsed := time.Since(time.Unix(0, s.replay.startNano.Load())); elapsed > 0 && done > 0 {
				replay["records_per_second"] = math.Round(float64(done) / elapsed.Seconds())
			}
			body["status"] = "replaying_wal"
			body["wal_replay"] = replay
		}
		json.NewEncoder(w).Encode(body)
		return
	}
	if c.ing != nil {
		st := c.ing.Stats()
		degraded := ""
		switch {
		case st.LastError != "":
			degraded = "ingest apply failing: " + st.LastError
		case s.maxStaleness > 0 && st.OldestPendingAge > s.maxStaleness:
			degraded = fmt.Sprintf("staleness bound exceeded: oldest pending delta %v > %v",
				st.OldestPendingAge.Round(time.Millisecond), s.maxStaleness)
		}
		if degraded != "" {
			w.Header().Set("Retry-After", s.retryAfterHint(shedDegraded))
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]interface{}{
				"status":            "degraded",
				"error":             degraded,
				"pending_records":   st.PendingRecords,
				"oldest_pending_ms": float64(st.OldestPendingAge) / float64(time.Millisecond),
				"max_staleness_ms":  float64(s.maxStaleness) / float64(time.Millisecond),
			})
			return
		}
	}
	// A router is only as ready as the shards behind it: an active probe
	// of the topology turns unreachable shards into a degraded /readyz,
	// so an orchestrator health-checking the router sees the cluster's
	// state, not just the router process's.
	if c.rtr != nil {
		pctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
		down := c.rtr.Probe(pctx)
		cancel()
		if len(down) > 0 {
			w.Header().Set("Retry-After", s.retryAfterHint(shedDegraded))
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]interface{}{
				"status":      "degraded",
				"error":       fmt.Sprintf("%d of %d shards unreachable; queries answer partial results", len(down), c.rtr.NumShards()),
				"shards_down": down,
			})
			return
		}
	}
	// A sustained multi-window budget burn also degrades readiness when
	// the operator opted in with -slo-burn-degrade: the orchestrator can
	// then pull a tail-latency-sick replica out of rotation before it
	// exhausts the budget.
	if s.sloBurnDegrade > 0 {
		if reason := s.slo.Degraded(); reason != "" {
			w.Header().Set("Retry-After", s.retryAfterHint(shedDegraded))
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]interface{}{
				"status": "degraded",
				"error":  reason,
				"slo":    s.slo.Status(),
			})
			return
		}
	}
	writeJSON(w, map[string]interface{}{"status": "ready"})
}

// ingestDelta is one history delta in a POST /ingest request body.
type ingestDelta struct {
	Op      string         `json:"op"` // append | extend_observation | extend_horizon
	Attr    history.AttrID `json:"attr"`
	Start   int            `json:"start,omitempty"`
	End     int            `json:"end"`
	Horizon int            `json:"horizon,omitempty"`
	Values  []string       `json:"values,omitempty"`
}

// ingestMaxBody bounds a POST /ingest request body; a delta batch is a
// control-plane payload, not a bulk load.
const ingestMaxBody = 8 << 20

// handleIngest accepts a batch of history deltas:
//
//	{"deltas": [{"op": "extend_horizon", "horizon": 91},
//	            {"op": "append", "attr": 3, "start": 90, "end": 91, "values": ["x"]}]}
//
// The batch is atomic: every delta validates against the dataset plus
// the pending queue plus the batch prefix, or the whole batch is
// rejected with 400 and nothing is logged. On 200 the batch is already
// fsynced to the WAL — it survives a crash — and will fold into the
// serving index within the staleness bound.
func (s *server) handleIngest(c *corpus, w http.ResponseWriter, r *http.Request) {
	if c.ing == nil {
		httpError(w, http.StatusNotImplemented, codeNotImplemented, errors.New("live ingestion disabled: start with -wal"))
		return
	}
	var req struct {
		Deltas []ingestDelta `json:"deltas"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, ingestMaxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, codeInvalidParameter, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Deltas) == 0 {
		httpError(w, http.StatusBadRequest, codeInvalidParameter, errors.New("empty delta batch"))
		return
	}
	recs := make([]wal.Record, len(req.Deltas))
	for i, d := range req.Deltas {
		rec := wal.Record{
			Attr:    d.Attr,
			Start:   timeline.Time(d.Start),
			End:     timeline.Time(d.End),
			Horizon: timeline.Time(d.Horizon),
			Values:  d.Values,
		}
		switch d.Op {
		case "append":
			rec.Type = wal.TypeAppend
		case "extend_observation":
			rec.Type = wal.TypeExtendObservation
		case "extend_horizon":
			rec.Type = wal.TypeExtendHorizon
		default:
			httpError(w, http.StatusBadRequest, codeInvalidParameter, fmt.Errorf("delta %d: unknown op %q", i, d.Op))
			return
		}
		recs[i] = rec
	}
	if err := c.ing.Submit(recs); err != nil {
		switch {
		case errors.Is(err, ingest.ErrRejected):
			httpError(w, http.StatusBadRequest, codeRejected, err)
		case errors.Is(err, ingest.ErrClosed):
			w.Header().Set("Retry-After", s.retryAfterHint(shedSaturated))
			httpError(w, http.StatusServiceUnavailable, codeNotReady, err)
		default:
			// WAL append failure: the delta is not durable, surface it loudly.
			httpError(w, http.StatusInternalServerError, codeInternal, err)
		}
		return
	}
	st := c.ing.Stats()
	writeJSON(w, map[string]interface{}{
		"accepted":        len(recs),
		"durable":         true,
		"pending_records": st.PendingRecords,
		"wal_size":        st.WALSize,
	})
}

func (s *server) handleStats(c *corpus, w http.ResponseWriter, r *http.Request) {
	// Ingester stats come first, outside the view: the ingester lock is
	// taken before the dataset lock on the submit path, so taking it the
	// other way around here could deadlock behind a queued apply.
	var ingestBody, resliceBody map[string]interface{}
	if c.ing != nil {
		ist := c.ing.Stats()
		ingestBody = map[string]interface{}{
			"pending_records":   ist.PendingRecords,
			"oldest_pending_ms": float64(ist.OldestPendingAge) / float64(time.Millisecond),
			"wal_lag_bytes":     ist.WALLagBytes,
			"wal_size":          ist.WALSize,
			"submitted_records": ist.SubmittedRecords,
			"rejected_records":  ist.RejectedRecords,
			"applied_records":   ist.AppliedRecords,
			"applies":           ist.Applies,
			"applied_offset":    ist.AppliedOffset,
			"snapshots":         ist.Snapshots,
			"snapshot_offset":   ist.SnapshotOffset,
		}
		if ist.LastError != "" {
			ingestBody["last_error"] = ist.LastError
		}
		// Reslice state, from the same pre-view ingester snapshot (the
		// trigger policy lives in the ingest loop).
		resliceBody = map[string]interface{}{
			"reslices": ist.Reslices,
		}
		if !ist.LastReslice.IsZero() {
			resliceBody["last_reslice"] = ist.LastReslice.UTC().Format(time.RFC3339Nano)
			resliceBody["coverage_before"] = ist.LastResliceCoverageBefore
			resliceBody["coverage_after"] = ist.LastResliceCoverageAfter
		}
		if ist.LastResliceError != "" {
			resliceBody["last_error"] = ist.LastResliceError
		}
	}
	var body map[string]interface{}
	c.view(func(ds *history.Dataset) {
		st := ds.ComputeStats()
		ist := c.idx.Stats()
		body = map[string]interface{}{
			"attributes":             st.Attributes,
			"horizon_days":           int(ds.Horizon()),
			"distinct_values":        st.DistinctValues,
			"mean_changes":           st.MeanChanges,
			"mean_cardinality":       st.MeanCardinality,
			"index_slices":           ist.Slices,
			"index_bytes":            ist.MemoryBytes,
			"dirty_attributes":       ist.DirtyAttributes,
			"slice_pruning_coverage": ist.SlicePruningCoverage,
		}
		if resliceBody != nil {
			body["reslice"] = resliceBody
		}
	})
	switch e := c.idx.(type) {
	case *shard.ShardedIndex:
		body["shards"] = e.NumShards()
	case *router.Router:
		down := e.Degraded()
		if down == nil {
			down = []int{}
		}
		body["shards"] = e.NumShards()
		body["router"] = map[string]interface{}{"shards_down": down}
	case *router.ShardServer:
		body["shards"] = e.Single().Shards()
		body["shard_id"] = e.Single().ShardID
		body["owned_attributes"] = len(e.Single().Globals())
	}
	if ingestBody != nil {
		body["ingest"] = ingestBody
	}
	writeJSON(w, body)
}
