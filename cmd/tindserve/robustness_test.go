package main

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"tind/internal/datagen"
	"tind/internal/history"
	"tind/internal/index"
)

func TestHealthzBeforeAndAfterReady(t *testing.T) {
	s := newServer(config{})
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	// Liveness answers immediately; readiness and queries shed until the
	// corpus is installed.
	getJSON(t, ts.URL+"/healthz", http.StatusOK)
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before install: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("/readyz 503 must carry Retry-After")
	}
	out := getJSON(t, ts.URL+"/search?attr=0", http.StatusServiceUnavailable)
	if code, _ := errEnvelope(t, out); code != "not_ready" {
		t.Fatalf("not-ready query: code %q, want not_ready", code)
	}

	c, err := datagen.Generate(datagen.Config{Seed: 4, Attributes: 40, Horizon: 300, AttrsPerDomain: 20})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(c.Dataset, index.DefaultOptions(c.Dataset.Horizon()))
	if err != nil {
		t.Fatal(err)
	}
	s.install(&serving{ds: c.Dataset, idx: idx})
	getJSON(t, ts.URL+"/readyz", http.StatusOK)
	getJSON(t, ts.URL+"/search?attr=0", http.StatusOK)
}

func TestPanicRecoveryReturnsJSON500(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	ts := httptest.NewServer(recoverJSON(mux))
	defer ts.Close()

	out := getJSON(t, ts.URL+"/boom", http.StatusInternalServerError)
	code, msg := errEnvelope(t, out)
	if code != "internal" || !strings.Contains(msg, "kaboom") {
		t.Fatalf("panic envelope (%q, %q) must be internal/kaboom: %v", code, msg, out)
	}
	// The server must survive the panic and keep answering.
	getJSON(t, ts.URL+"/boom", http.StatusInternalServerError)
}

func TestLoadSheddingWhenSaturated(t *testing.T) {
	s, _ := testServerConfig(t, config{maxInFlight: 1})

	release := make(chan struct{})
	entered := make(chan struct{})
	blocked := s.query(1, func(c *corpus, w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
	})
	probe := s.query(1, func(c *corpus, w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec := httptest.NewRecorder()
		blocked.ServeHTTP(rec, httptest.NewRequest("GET", "/search?attr=0", nil))
		if rec.Code != http.StatusOK {
			t.Errorf("in-flight request: status %d", rec.Code)
		}
	}()
	<-entered

	// Capacity 1 is in use: the next request must shed, not queue.
	rec := httptest.NewRecorder()
	probe.ServeHTTP(rec, httptest.NewRequest("GET", "/search?attr=0", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated server: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("shed response must carry Retry-After")
	}

	close(release)
	wg.Wait()

	// Weight released: requests are admitted again.
	rec = httptest.NewRecorder()
	probe.ServeHTTP(rec, httptest.NewRequest("GET", "/search?attr=0", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("after release: status %d, want 200", rec.Code)
	}
}

func TestQueryDeadlineExpiry(t *testing.T) {
	// A 1ns deadline is already expired when the query starts; the
	// handler must answer 504 with the typed deadline error, not hang.
	_, ts := testServerConfig(t, config{queryTimeout: time.Nanosecond})
	for _, path := range []string{"/search?attr=0", "/reverse?attr=0", "/topk?attr=0&k=3"} {
		out := getJSON(t, ts.URL+path, http.StatusGatewayTimeout)
		code, msg := errEnvelope(t, out)
		if code != "deadline_exceeded" || !strings.Contains(msg, "deadline") {
			t.Fatalf("%s: deadline envelope (%q, %q): %v", path, code, msg, out)
		}
	}
}

// buildSmallCorpus builds a small ready-made corpus for run() lifecycle
// tests.
func buildSmallCorpus(t *testing.T) (*history.Dataset, *index.Index) {
	t.Helper()
	c, err := datagen.Generate(datagen.Config{Seed: 7, Attributes: 30, Horizon: 200, AttrsPerDomain: 15})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(c.Dataset, index.DefaultOptions(c.Dataset.Horizon()))
	if err != nil {
		t.Fatal(err)
	}
	return c.Dataset, idx
}

func TestRunDrainsInFlightRequestsOnShutdown(t *testing.T) {
	ds, idx := buildSmallCorpus(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, config{drainTimeout: 5 * time.Second}, ln,
			func(*replayProgress) (*serving, error) { return &serving{ds: ds, idx: idx}, nil })
	}()

	base := "http://" + ln.Addr().String()
	waitReady(t, base)

	// Put a request in flight, then trigger shutdown while it runs. The
	// drain must let it complete with a full response.
	inFlight := make(chan error, 1)
	go func() {
		resp, err := http.Get(base + "/search?attr=0")
		if err != nil {
			inFlight <- err
			return
		}
		defer resp.Body.Close()
		if _, err := io.ReadAll(resp.Body); err != nil {
			inFlight <- err
			return
		}
		if resp.StatusCode != http.StatusOK {
			inFlight <- errors.New(resp.Status)
			return
		}
		inFlight <- nil
	}()
	// Give the request a moment to hit the server before draining.
	time.Sleep(20 * time.Millisecond)
	cancel()

	if err := <-inFlight; err != nil {
		t.Fatalf("in-flight request during drain: %v", err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after drain")
	}

	// The listener is closed: new connections must be refused.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after drain")
	}
}

func TestRunShutsDownOnSIGTERM(t *testing.T) {
	ds, idx := buildSmallCorpus(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Same wiring as main: a signal context translates SIGTERM into the
	// drain path.
	ctx, stop := signalNotifyContext(t)
	defer stop()
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, config{drainTimeout: 5 * time.Second}, ln,
			func(*replayProgress) (*serving, error) { return &serving{ds: ds, idx: idx}, nil })
	}()
	waitReady(t, "http://"+ln.Addr().String())

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run after SIGTERM: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SIGTERM did not drain the server")
	}
}

func TestRunFailsWhenCorpusLoadFails(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	loadErr := errors.New("corrupt corpus")
	err = run(context.Background(), config{drainTimeout: time.Second}, ln,
		func(*replayProgress) (*serving, error) { return nil, loadErr })
	if err == nil || !errors.Is(err, loadErr) {
		t.Fatalf("run must surface the load failure, got %v", err)
	}
}

// signalNotifyContext mirrors main's signal wiring for the SIGTERM test.
func signalNotifyContext(t *testing.T) (context.Context, context.CancelFunc) {
	t.Helper()
	return signal.NotifyContext(context.Background(), syscall.SIGTERM)
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("server never became ready")
}
