package main

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"tind/internal/history"
	"tind/internal/index"
	"tind/internal/timeline"
	"tind/internal/values"
)

// sampleLine matches one Prometheus text-format sample:
// name{optional labels} value.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (.+)$`)

func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t)
	// Exercise the query path so the phase histograms have samples.
	getJSON(t, ts.URL+"/search?attr=0&eps=3&delta=7", http.StatusOK)
	getJSON(t, ts.URL+"/topk?attr=0&k=3", http.StatusOK)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	// Every non-comment line must parse as a sample with a float value.
	samples := 0
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line: %q", line)
		}
		if _, err := strconv.ParseFloat(m[2], 64); err != nil {
			t.Fatalf("sample %q: bad value: %v", line, err)
		}
		samples++
	}
	if samples == 0 {
		t.Fatal("exposition contains no samples")
	}

	for _, want := range []string{
		"tind_index_bloom_fill_ratio{matrix=\"m_t\"}",
		"tind_query_phase_seconds_bucket",
		"tind_query_phase_seconds_bucket{mode=\"forward\",phase=\"validate\",le=\"+Inf\"}",
		"tind_queries_total{mode=\"forward\"}",
		"tind_http_requests_total{endpoint=\"/search\",code=\"200\"}",
		"tind_http_request_seconds_bucket",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The fill-ratio gauge of the required-values matrix must carry a
	// real value: the test corpus is non-empty, so some bits are set.
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "tind_index_bloom_fill_ratio{matrix=\"m_t\"}") {
			v, err := strconv.ParseFloat(strings.Fields(line)[1], 64)
			if err != nil || v <= 0 || v > 1 {
				t.Fatalf("m_t fill ratio %q out of (0,1]: %v", line, err)
			}
		}
	}
}

func TestMetricsServedWhileNotReady(t *testing.T) {
	// Corpus never installed: query endpoints shed, but scrapes must not.
	s := newServer(config{})
	w := httptest.NewRecorder()
	s.routes().ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics while not ready: status %d", w.Code)
	}
}

func TestPprofGating(t *testing.T) {
	_, off := testServerConfig(t, config{})
	resp, err := http.Get(off.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without -pprof: status %d, want 404", resp.StatusCode)
	}

	_, on := testServerConfig(t, config{pprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof with -pprof: status %d, want 200", resp.StatusCode)
	}
}

func TestSlowQueryLog(t *testing.T) {
	// Threshold of 1ns: every query is slow, so one request must produce
	// one log line carrying the per-phase breakdown.
	s, ts := testServerConfig(t, config{slowQuery: time.Nanosecond})
	var mu sync.Mutex
	var lines []string
	s.logf = func(format string, args ...interface{}) {
		mu.Lock()
		defer mu.Unlock()
		lines = append(lines, fmt.Sprintf(format, args...))
	}

	getJSON(t, ts.URL+"/search?attr=0&eps=3&delta=7", http.StatusOK)

	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 {
		t.Fatalf("slow-query log lines: %d, want 1: %q", len(lines), lines)
	}
	line := lines[0]
	for _, want := range []string{
		"slow query", "GET /search", "-> 200",
		"phases[", "mt_prune=", "validate=", "trace[",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("slow-query line missing %q: %s", want, line)
		}
	}
}

func TestSlowQueryLogDisabled(t *testing.T) {
	s, ts := testServerConfig(t, config{}) // threshold 0 = disabled
	var mu sync.Mutex
	var lines []string
	s.logf = func(format string, args ...interface{}) {
		mu.Lock()
		defer mu.Unlock()
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	getJSON(t, ts.URL+"/search?attr=0", http.StatusOK)
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 0 {
		t.Fatalf("disabled slow-query log still logged: %q", lines)
	}
}

// miniCorpus builds a one-attribute dataset whose only page title is the
// given string, plus its index.
func miniCorpus(t *testing.T, page string) (*history.Dataset, *index.Index) {
	t.Helper()
	ds := history.NewDataset(timeline.Time(100))
	dict := ds.Dict()
	vals := values.Set{dict.Intern("x"), dict.Intern("y")}
	h, err := history.New(history.Meta{Page: page, Table: "t", Column: "c"},
		[]history.Version{{Start: 0, Values: vals}}, timeline.Time(100))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Add(h); err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(ds, index.DefaultOptions(ds.Horizon()))
	if err != nil {
		t.Fatal(err)
	}
	return ds, idx
}

// TestResolveCacheFollowsCorpusSwap guards the regression where the
// lowercased-page cache used by resolve outlived a corpus swap: after a
// second install, resolve must see only the new corpus's pages.
func TestResolveCacheFollowsCorpusSwap(t *testing.T) {
	s := newServer(config{})
	s.install(miniCorpus(t, "Alpha Page"))

	c := s.corpus.Load()
	if _, err := c.resolve("alpha"); err != nil {
		t.Fatalf("resolve on first corpus: %v", err)
	}
	if _, err := c.resolve("beta"); err == nil {
		t.Fatal("resolved a page absent from the first corpus")
	}

	s.install(miniCorpus(t, "Beta Page"))
	c = s.corpus.Load()
	h, err := c.resolve("beta")
	if err != nil {
		t.Fatalf("resolve after swap: %v", err)
	}
	if h.Meta().Page != "Beta Page" {
		t.Fatalf("resolved %q, want the swapped-in page", h.Meta().Page)
	}
	if _, err := c.resolve("alpha"); err == nil {
		t.Fatal("stale page cache: resolved a page from the replaced corpus")
	}
}
