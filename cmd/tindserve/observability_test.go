package main

import (
	"bufio"
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"tind/internal/history"
	"tind/internal/index"
	"tind/internal/obs"
	"tind/internal/timeline"
	"tind/internal/values"
)

// logCapture is a goroutine-safe sink for the server's slog output.
type logCapture struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (c *logCapture) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.Write(p)
}

func (c *logCapture) lines() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := strings.TrimSpace(c.buf.String())
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// captureLog points the server's structured log at a buffer.
func captureLog(s *server) *logCapture {
	c := &logCapture{}
	s.log = slog.New(slog.NewTextHandler(c, nil))
	return c
}

// sampleLine matches one Prometheus text-format sample:
// name{optional labels} value.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (.+)$`)

func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t)
	// Exercise the query path so the phase histograms have samples. The
	// registry diff across the two requests is checked below — other
	// tests share the process registry, so absolute values are unusable.
	before := obs.Default().Snapshot()
	getJSON(t, ts.URL+"/search?attr=0&eps=3&delta=7", http.StatusOK)
	getJSON(t, ts.URL+"/topk?attr=0&k=3", http.StatusOK)
	d := obs.Default().Snapshot().Diff(before)

	if v := d.Value("tind_queries_total", obs.L("mode", "forward")); v != 1 {
		t.Errorf("forward queries delta = %g, want 1", v)
	}
	if v := d.Value("tind_http_requests_total",
		obs.L("endpoint", "/search"), obs.L("code", "200")); v != 1 {
		t.Errorf("/search 200s delta = %g, want 1", v)
	}
	if c := d.Count("tind_http_query_seconds"); c != 2 {
		t.Errorf("aggregate query latency samples delta = %d, want 2", c)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	// Every non-comment line must parse as a sample with a float value.
	samples := 0
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line: %q", line)
		}
		if _, err := strconv.ParseFloat(m[2], 64); err != nil {
			t.Fatalf("sample %q: bad value: %v", line, err)
		}
		samples++
	}
	if samples == 0 {
		t.Fatal("exposition contains no samples")
	}

	for _, want := range []string{
		"tind_index_bloom_fill_ratio{matrix=\"m_t\"}",
		"tind_query_phase_seconds_bucket",
		"tind_query_phase_seconds_bucket{mode=\"forward\",phase=\"validate\",le=\"+Inf\"}",
		"tind_queries_total{mode=\"forward\"}",
		"tind_http_requests_total{endpoint=\"/search\",code=\"200\"}",
		"tind_http_request_seconds_bucket",
		"tind_http_query_seconds_bucket",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The fill-ratio gauge of the required-values matrix must carry a
	// real value: the test corpus is non-empty, so some bits are set.
	snap := obs.Default().Snapshot()
	if v := snap.Value("tind_index_bloom_fill_ratio", obs.L("matrix", "m_t")); v <= 0 || v > 1 {
		t.Fatalf("m_t fill ratio %g out of (0,1]", v)
	}
}

func TestMetricsServedWhileNotReady(t *testing.T) {
	// Corpus never installed: query endpoints shed, but scrapes must not.
	s := newServer(config{})
	w := httptest.NewRecorder()
	s.routes().ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics while not ready: status %d", w.Code)
	}
}

func TestPprofGating(t *testing.T) {
	_, off := testServerConfig(t, config{})
	resp, err := http.Get(off.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without -pprof: status %d, want 404", resp.StatusCode)
	}

	_, on := testServerConfig(t, config{pprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof with -pprof: status %d, want 200", resp.StatusCode)
	}
}

func TestSlowQueryLog(t *testing.T) {
	// Threshold of 1ns: every query is slow, so one request must produce
	// one log line carrying the per-phase breakdown.
	s, ts := testServerConfig(t, config{slowQuery: time.Nanosecond})
	cap := captureLog(s)

	resp, err := http.Get(ts.URL + "/search?attr=0&eps=3&delta=7")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	qid := resp.Header.Get("X-Query-ID")
	if qid == "" {
		t.Fatal("response missing X-Query-ID header")
	}

	lines := cap.lines()
	if len(lines) != 1 {
		t.Fatalf("slow-query log lines: %d, want 1: %q", len(lines), lines)
	}
	line := lines[0]
	for _, want := range []string{
		`msg="slow query"`, "qid=" + qid, "method=GET", "/search",
		"status=200", "p95_ms=", "p99_ms=",
		"phases[", "mt_prune=", "validate=", "trace[",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("slow-query line missing %q: %s", want, line)
		}
	}
}

func TestSlowQueryLogDisabled(t *testing.T) {
	s, ts := testServerConfig(t, config{}) // threshold 0 = disabled
	cap := captureLog(s)
	getJSON(t, ts.URL+"/search?attr=0", http.StatusOK)
	if lines := cap.lines(); len(lines) != 0 {
		t.Fatalf("disabled slow-query log still logged: %q", lines)
	}
}

// miniCorpus builds a one-attribute dataset whose only page title is the
// given string, plus its index.
func miniCorpus(t *testing.T, page string) *serving {
	t.Helper()
	ds := history.NewDataset(timeline.Time(100))
	dict := ds.Dict()
	vals := values.Set{dict.Intern("x"), dict.Intern("y")}
	h, err := history.New(history.Meta{Page: page, Table: "t", Column: "c"},
		[]history.Version{{Start: 0, Values: vals}}, timeline.Time(100))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Add(h); err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(ds, index.DefaultOptions(ds.Horizon()))
	if err != nil {
		t.Fatal(err)
	}
	return &serving{ds: ds, idx: idx}
}

// TestResolveCacheFollowsCorpusSwap guards the regression where the
// lowercased-page cache used by resolve outlived a corpus swap: after a
// second install, resolve must see only the new corpus's pages.
func TestResolveCacheFollowsCorpusSwap(t *testing.T) {
	s := newServer(config{})
	s.install(miniCorpus(t, "Alpha Page"))

	c := s.corpus.Load()
	if _, err := c.resolve("alpha"); err != nil {
		t.Fatalf("resolve on first corpus: %v", err)
	}
	if _, err := c.resolve("beta"); err == nil {
		t.Fatal("resolved a page absent from the first corpus")
	}

	s.install(miniCorpus(t, "Beta Page"))
	c = s.corpus.Load()
	h, err := c.resolve("beta")
	if err != nil {
		t.Fatalf("resolve after swap: %v", err)
	}
	if h.Meta().Page != "Beta Page" {
		t.Fatalf("resolved %q, want the swapped-in page", h.Meta().Page)
	}
	if _, err := c.resolve("alpha"); err == nil {
		t.Fatal("stale page cache: resolved a page from the replaced corpus")
	}
}
