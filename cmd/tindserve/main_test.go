package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"tind/internal/datagen"
	"tind/internal/index"
)

func testServerConfig(t *testing.T, cfg config) (*server, *httptest.Server) {
	t.Helper()
	c, err := datagen.Generate(datagen.Config{Seed: 4, Attributes: 80, Horizon: 500, AttrsPerDomain: 20})
	if err != nil {
		t.Fatal(err)
	}
	opt := index.DefaultOptions(c.Dataset.Horizon())
	opt.Reverse = true
	idx, err := index.Build(c.Dataset, opt)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(cfg)
	s.install(&serving{ds: c.Dataset, idx: idx})
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return s, ts
}

func testServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	return testServerConfig(t, config{})
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]interface{} {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSearchEndpoint(t *testing.T) {
	_, ts := testServer(t)
	out := getJSON(t, ts.URL+"/search?attr=derived&eps=3&delta=7", http.StatusOK)
	if out["query"] == nil || out["results"] == nil {
		t.Fatalf("response shape: %v", out)
	}
	if out["eps"].(float64) != 3 || out["delta"].(float64) != 7 {
		t.Fatalf("parameters not echoed: %v", out)
	}
}

func TestSearchDefaultsAndReverse(t *testing.T) {
	_, ts := testServer(t)
	out := getJSON(t, ts.URL+"/search?attr=0", http.StatusOK)
	if out["eps"].(float64) != 3 || out["delta"].(float64) != 7 {
		t.Fatalf("paper defaults expected: %v", out)
	}
	rout := getJSON(t, ts.URL+"/reverse?attr="+url.QueryEscape("List of D0"), http.StatusOK)
	if rout["results"] == nil {
		t.Fatal("reverse results missing")
	}
	// A reference list should contain at least one attribute.
	if len(rout["results"].([]interface{})) == 0 {
		t.Fatal("reverse search from a reference must find subsets")
	}
}

func TestTopKEndpoint(t *testing.T) {
	_, ts := testServer(t)
	out := getJSON(t, ts.URL+"/topk?attr=derived&k=3", http.StatusOK)
	results := out["results"].([]interface{})
	if len(results) != 3 {
		t.Fatalf("topk returned %d results", len(results))
	}
	prev := -1.0
	for _, r := range results {
		v := r.(map[string]interface{})["violation"].(float64)
		if v < prev {
			t.Fatal("topk results not sorted by violation")
		}
		prev = v
	}
}

func TestAttrEndpoint(t *testing.T) {
	_, ts := testServer(t)
	out := getJSON(t, ts.URL+"/attr?attr=0", http.StatusOK)
	if out["versions"] == nil || out["observed_from"] == nil {
		t.Fatalf("attr response shape: %v", out)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := testServer(t)
	out := getJSON(t, ts.URL+"/stats", http.StatusOK)
	if out["attributes"].(float64) != 80 {
		t.Fatalf("stats: %v", out)
	}
}

func TestHealthzLatencyQuantiles(t *testing.T) {
	_, ts := testServer(t)
	// The aggregate latency histogram is process-global, so after one
	// query the quantile block must be present and ordered.
	getJSON(t, ts.URL+"/search?attr=0", http.StatusOK)
	out := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if out["status"] != "ok" {
		t.Fatalf("healthz: %v", out)
	}
	if out["queries_served"].(float64) < 1 {
		t.Fatalf("queries_served missing: %v", out)
	}
	lat, ok := out["query_latency_ms"].(map[string]interface{})
	if !ok {
		t.Fatalf("query_latency_ms missing: %v", out)
	}
	p50, p95, p99 := lat["p50"].(float64), lat["p95"].(float64), lat["p99"].(float64)
	if p50 < 0 || p50 > p95 || p95 > p99 {
		t.Fatalf("quantiles out of order: p50=%g p95=%g p99=%g", p50, p95, p99)
	}
}

func TestErrorResponses(t *testing.T) {
	_, ts := testServer(t)
	cases := []string{
		"/search",                   // missing attr
		"/search?attr=no-such-page", // unresolvable
		"/search?attr=0&eps=-1",     // bad eps
		"/search?attr=0&delta=x",    // bad delta
		"/search?attr=99999",        // out of range
		"/topk?attr=0&k=0",          // bad k
		"/topk?attr=0&k=abc",        // bad k
	}
	for _, path := range cases {
		out := getJSON(t, ts.URL+path, http.StatusBadRequest)
		if code, _ := errEnvelope(t, out); code != "invalid_parameter" {
			t.Errorf("%s: code %q, want invalid_parameter", path, code)
		}
	}
}
