package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tind/internal/core"
	"tind/internal/datagen"
	"tind/internal/history"
	"tind/internal/index"
	"tind/internal/ingest"
	"tind/internal/oracle"
	"tind/internal/timeline"
	"tind/internal/wal"
)

// newIngestServer assembles a live-ingestion server through the real
// loadServing path (synthetic corpus, WAL, snapshot container) and wires
// it into the HTTP surface. mut tweaks the corpus config before loading.
func newIngestServer(t *testing.T, shards int, cfg config, mut func(cc *corpusConfig)) (*server, *httptest.Server, corpusConfig) {
	t.Helper()
	dir := t.TempDir()
	cc := corpusConfig{
		attrs: 40, horizon: 120, seed: 4, shards: shards,
		wal:           filepath.Join(dir, "ingest.wal"),
		snapshot:      filepath.Join(dir, "snap"),
		snapshotEvery: 1,
		// Applies only on demand (Flush) unless a test lowers these.
		maxDirty:    1 << 30,
		maxDirtyAge: time.Hour,
	}
	if mut != nil {
		mut(&cc)
	}
	sv, err := loadServing(cc, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(cfg)
	s.install(sv)
	ts := httptest.NewServer(s.routes())
	t.Cleanup(func() {
		ts.Close()
		s.closeServing()
	})
	return s, ts, cc
}

// httpDeltaFeed builds valid /ingest request bodies against a
// client-side shadow of the dataset state — exactly what an external
// ingest client tracks.
type httpDeltaFeed struct {
	horizon int
	ends    map[int]int
	rounds  int
}

func newHTTPDeltaFeed(c *corpus) *httpDeltaFeed {
	f := &httpDeltaFeed{ends: make(map[int]int)}
	c.view(func(ds *history.Dataset) {
		f.horizon = int(ds.Horizon())
		for i := 0; i < ds.Len(); i++ {
			f.ends[i] = int(ds.Attr(history.AttrID(i)).ObservedUntil())
		}
	})
	return f
}

// round returns one valid batch body: a horizon extension plus an append
// per given attribute, and advances the shadow state.
func (f *httpDeltaFeed) round(attrs []int) string {
	f.rounds++
	f.horizon += 2
	deltas := []string{fmt.Sprintf(`{"op":"extend_horizon","horizon":%d}`, f.horizon)}
	for _, a := range attrs {
		deltas = append(deltas, fmt.Sprintf(
			`{"op":"append","attr":%d,"start":%d,"end":%d,"values":["live-%d-%d"]}`,
			a, f.ends[a], f.horizon, f.rounds, a))
		f.ends[a] = f.horizon
	}
	return `{"deltas":[` + strings.Join(deltas, ",") + `]}`
}

func postJSON(t *testing.T, url, body string, wantStatus int) map[string]interface{} {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	json.NewDecoder(resp.Body).Decode(&out)
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d (%v)", url, resp.StatusCode, wantStatus, out)
	}
	return out
}

func TestIngestEndpointDurableAck(t *testing.T) {
	s, ts, cc := newIngestServer(t, 1, config{}, nil)
	c := s.corpus.Load()
	feed := newHTTPDeltaFeed(c)

	out := postJSON(t, ts.URL+"/ingest", feed.round([]int{0, 1, 2}), http.StatusOK)
	if out["durable"] != true {
		t.Fatalf("acknowledged batch not durable: %v", out)
	}
	if out["accepted"].(float64) != 4 || out["pending_records"].(float64) != 4 {
		t.Fatalf("accepted/pending shape: %v", out)
	}
	// Durable means on disk before the 200: the WAL file holds the batch.
	fi, err := os.Stat(cc.wal)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() <= int64(wal.HeaderSize) {
		t.Fatalf("WAL still empty (%d bytes) after acknowledged batch", fi.Size())
	}
	sizeAfterAck := fi.Size()

	// Rejected batches: nothing may reach the WAL.
	for name, body := range map[string]string{
		"append beyond horizon": `{"deltas":[{"op":"append","attr":0,"start":0,"end":99999,"values":["x"]}]}`,
		"unknown op":            `{"deltas":[{"op":"rename","attr":0}]}`,
		"empty batch":           `{"deltas":[]}`,
		"garbage body":          `{"deltas": nope`,
		"unknown field":         `{"unexpected": 1}`,
	} {
		out := postJSON(t, ts.URL+"/ingest", body, http.StatusBadRequest)
		if code, _ := errEnvelope(t, out); code != "rejected" && code != "invalid_parameter" {
			t.Fatalf("%s: rejection code %q, want rejected or invalid_parameter: %v", name, code, out)
		}
	}
	if fi, err := os.Stat(cc.wal); err != nil || fi.Size() != sizeAfterAck {
		t.Fatalf("rejected batches changed the WAL: %d bytes, want %d (err %v)", fi.Size(), sizeAfterAck, err)
	}

	// /stats surfaces the staleness gauges while records pend.
	st := getJSON(t, ts.URL+"/stats", http.StatusOK)
	ing, ok := st["ingest"].(map[string]interface{})
	if !ok {
		t.Fatalf("/stats missing ingest section: %v", st)
	}
	if ing["pending_records"].(float64) != 4 || ing["wal_lag_bytes"].(float64) <= 0 {
		t.Fatalf("ingest stats before apply: %v", ing)
	}
	if ing["oldest_pending_ms"].(float64) <= 0 {
		t.Fatalf("oldest_pending_ms must be positive with records pending: %v", ing)
	}

	// After a flush the pending state drains and queries see the deltas.
	if err := c.ing.Flush(); err != nil {
		t.Fatal(err)
	}
	st = getJSON(t, ts.URL+"/stats", http.StatusOK)
	ing = st["ingest"].(map[string]interface{})
	if ing["pending_records"].(float64) != 0 || ing["applied_records"].(float64) != 4 {
		t.Fatalf("ingest stats after flush: %v", ing)
	}
	if int(st["horizon_days"].(float64)) != feed.horizon {
		t.Fatalf("horizon %v after apply, want %d", st["horizon_days"], feed.horizon)
	}
	getJSON(t, ts.URL+"/search?attr=0", http.StatusOK)
}

func TestIngestDisabledWithoutWAL(t *testing.T) {
	_, ts := testServer(t)
	out := postJSON(t, ts.URL+"/ingest", `{"deltas":[{"op":"extend_horizon","horizon":600}]}`, http.StatusNotImplemented)
	code, msg := errEnvelope(t, out)
	if code != "not_implemented" || !strings.Contains(msg, "-wal") {
		t.Fatalf("501 envelope (%q, %q) must point at the -wal flag: %v", code, msg, out)
	}
}

func TestReadyzDegradedWhenStalenessBoundExceeded(t *testing.T) {
	s, ts, _ := newIngestServer(t, 1, config{maxStaleness: time.Millisecond}, nil)
	getJSON(t, ts.URL+"/readyz", http.StatusOK)

	c := s.corpus.Load()
	feed := newHTTPDeltaFeed(c)
	postJSON(t, ts.URL+"/ingest", feed.round([]int{0, 1}), http.StatusOK)
	time.Sleep(5 * time.Millisecond)

	out := getJSON(t, ts.URL+"/readyz", http.StatusServiceUnavailable)
	if out["status"] != "degraded" || out["pending_records"].(float64) <= 0 {
		t.Fatalf("degraded readyz shape: %v", out)
	}
	if err := c.ing.Flush(); err != nil {
		t.Fatal(err)
	}
	getJSON(t, ts.URL+"/readyz", http.StatusOK)
}

// TestIngestQueryHammerHTTP extends the refresh-vs-query race hammer to
// the HTTP surface: concurrent POST /ingest traffic against live
// forward/reverse/top-k queries, on both the monolith and the sharded
// engine, with the background loop applying aggressively. Run with
// -race this pins the whole lock chain (handler view → ingester →
// engine refresh).
func TestIngestQueryHammerHTTP(t *testing.T) {
	for _, tc := range []struct {
		name   string
		shards int
	}{
		{"monolith", 1},
		{"sharded", 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, ts, _ := newIngestServer(t, tc.shards, config{}, func(cc *corpusConfig) {
				cc.maxDirty = 4
				cc.maxDirtyAge = 2 * time.Millisecond
			})
			c := s.corpus.Load()
			feed := newHTTPDeltaFeed(c)

			const rounds = 12
			stop := make(chan struct{})
			var wg sync.WaitGroup
			// Goroutines report through t.Error: t.Fatal must not be called
			// off the test goroutine.
			do := func(method, url, body string) error {
				var resp *http.Response
				var err error
				if method == http.MethodPost {
					resp, err = http.Post(url, "application/json", strings.NewReader(body))
				} else {
					resp, err = http.Get(url)
				}
				if err != nil {
					return err
				}
				defer resp.Body.Close()
				var out map[string]interface{}
				json.NewDecoder(resp.Body).Decode(&out)
				if resp.StatusCode != http.StatusOK {
					return fmt.Errorf("%s %s: status %d (%v)", method, url, resp.StatusCode, out)
				}
				return nil
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer close(stop)
				for r := 0; r < rounds; r++ {
					attrs := []int{(3 * r) % 10, (3*r + 1) % 10, (3*r + 2) % 10}
					if err := do(http.MethodPost, ts.URL+"/ingest", feed.round(attrs)); err != nil {
						t.Error(err)
						return
					}
				}
			}()
			paths := []string{"/search?attr=%d", "/reverse?attr=%d", "/topk?attr=%d&k=5"}
			for w := 0; w < 3; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						if err := do(http.MethodGet, ts.URL+fmt.Sprintf(paths[(i+w)%len(paths)], (i*7+w)%40), ""); err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			if t.Failed() {
				return
			}

			// Drain and check the books balance: every acknowledged record
			// either applied already or applies on this flush.
			if err := c.ing.Flush(); err != nil {
				t.Fatal(err)
			}
			st := getJSON(t, ts.URL+"/stats", http.StatusOK)
			ing := st["ingest"].(map[string]interface{})
			if ing["pending_records"].(float64) != 0 {
				t.Fatalf("records still pending after flush: %v", ing)
			}
			if ing["applied_records"].(float64) != ing["submitted_records"].(float64) {
				t.Fatalf("applied %v != submitted %v", ing["applied_records"], ing["submitted_records"])
			}
			if int(st["horizon_days"].(float64)) != feed.horizon {
				t.Fatalf("horizon %v after hammer, want %d", st["horizon_days"], feed.horizon)
			}
			getJSON(t, ts.URL+"/readyz", http.StatusOK)
		})
	}
}

// TestServeCrashRecoveryParity is the kill-mid-ingest contract at the
// serving layer: a victim server acknowledges deltas (some applied and
// snapshotted, some only WAL-durable), "crashes" with a torn frame on
// the WAL tail, and a restart through the real loadServing path —
// snapshot, suffix replay with progress, engine rebuild — must answer
// every query mode exactly like a from-scratch rebuild of the same
// deltas, pinned to the exact oracle.
func TestServeCrashRecoveryParity(t *testing.T) {
	victim, ts, cc := newIngestServer(t, 3, config{}, func(cc *corpusConfig) {
		cc.attrs, cc.horizon, cc.seed = 24, 90, 11
	})
	c := victim.corpus.Load()
	feed := newHTTPDeltaFeed(c)

	// Applied + snapshotted prefix (snapshotEvery=1 snapshots each apply).
	for r := 0; r < 3; r++ {
		postJSON(t, ts.URL+"/ingest", feed.round([]int{r, r + 5, r + 9}), http.StatusOK)
	}
	if err := c.ing.Flush(); err != nil {
		t.Fatal(err)
	}
	// Durable-but-unapplied suffix: acknowledged, never applied.
	for r := 0; r < 3; r++ {
		postJSON(t, ts.URL+"/ingest", feed.round([]int{r + 2, r + 12}), http.StatusOK)
	}
	ts.Close()
	// Crash: a torn frame on the tail, as a kill -9 mid-append leaves it.
	f, err := os.OpenFile(cc.wal, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x21, 0, 0, 0, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Restart through the real startup path, watching replay progress.
	var rp replayProgress
	sv, err := loadServing(cc, &rp)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		sv.ing.Close()
		sv.wal.Close()
	}()
	if rp.total.Load() == 0 || rp.done.Load() != rp.total.Load() {
		t.Fatalf("replay progress %d/%d: the unapplied suffix must replay", rp.done.Load(), rp.total.Load())
	}

	// Truth: regenerate the corpus and replay the whole WAL from zero.
	gen, err := datagen.Generate(datagen.Config{
		Seed: cc.seed, Attributes: cc.attrs, Horizon: timeline.Time(cc.horizon),
	})
	if err != nil {
		t.Fatal(err)
	}
	truth := gen.Dataset
	log, err := wal.Open(cc.wal, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ingest.Replay(truth, log, 0, nil); err != nil {
		t.Fatal(err)
	}
	log.Close()
	opt := index.DefaultOptions(truth.Horizon())
	opt.Reverse = true
	opt.Seed = cc.seed
	rebuilt, err := index.Build(truth, opt)
	if err != nil {
		t.Fatal(err)
	}

	if sv.ds.Horizon() != truth.Horizon() {
		t.Fatalf("recovered horizon %d, rebuilt %d", sv.ds.Horizon(), truth.Horizon())
	}
	p := core.DefaultDays(truth.Horizon())
	ctx := context.Background()
	for i := 0; i < truth.Len(); i++ {
		q := sv.ds.Attr(history.AttrID(i))
		qt := truth.Attr(history.AttrID(i))
		for _, mode := range []index.Mode{index.ModeForward, index.ModeReverse} {
			a, err := sv.idx.Query(ctx, q, index.QueryOptions{Mode: mode, Params: p})
			if err != nil {
				t.Fatal(err)
			}
			b, err := rebuilt.Query(ctx, qt, index.QueryOptions{Mode: mode, Params: p})
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(a.IDs) != fmt.Sprint(b.IDs) {
				t.Fatalf("q=%d %v: recovered %v, rebuilt %v", i, mode, a.IDs, b.IDs)
			}
			var want []history.AttrID
			if mode == index.ModeForward {
				want = oracle.ForwardSet(truth, qt, p)
			} else {
				want = oracle.ReverseSet(truth, qt, p)
			}
			if fmt.Sprint(a.IDs) != fmt.Sprint(want) {
				t.Fatalf("q=%d %v: recovered %v, oracle %v", i, mode, a.IDs, want)
			}
		}
		a, err := sv.idx.Query(ctx, q, index.QueryOptions{Mode: index.ModeTopK, K: 5, Params: p})
		if err != nil {
			t.Fatal(err)
		}
		want := oracle.TopK(truth, qt, p, 5)
		if len(a.Ranked) != len(want) {
			t.Fatalf("q=%d topk: %d ranked, oracle %d", i, len(a.Ranked), len(want))
		}
		for j := range want {
			if a.Ranked[j].ID != want[j].ID {
				t.Fatalf("q=%d topk[%d]: %d, oracle %d", i, j, a.Ranked[j].ID, want[j].ID)
			}
		}
	}
}

// TestStatsResliceSection drives the background coverage-repair loop
// through the HTTP surface: live deltas dirty attributes, coverage dips
// under -reslice-min-coverage, the ingest loop reslices, and /stats
// grows a "reslice" section describing the pass.
func TestStatsResliceSection(t *testing.T) {
	s, ts, _ := newIngestServer(t, 2, config{}, func(cc *corpusConfig) {
		cc.maxDirty = 4
		cc.maxDirtyAge = 20 * time.Millisecond
		cc.resliceMinCoverage = 0.999 // any dirty attribute triggers repair
	})
	c := s.corpus.Load()
	feed := newHTTPDeltaFeed(c)
	for round := 0; round < 3; round++ {
		postJSON(t, ts.URL+"/ingest", feed.round([]int{0, 1, 2, 3, 4}), http.StatusOK)
	}

	deadline := time.Now().Add(5 * time.Second)
	var rs map[string]interface{}
	for {
		st := getJSON(t, ts.URL+"/stats", http.StatusOK)
		if ing, ok := st["ingest"].(map[string]interface{}); ok && ing["pending_records"].(float64) == 0 {
			if sec, ok := st["reslice"].(map[string]interface{}); ok && sec["reslices"].(float64) > 0 {
				rs = sec
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no reslice section after drain: %v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rs["coverage_after"].(float64) != 1 {
		t.Fatalf("reslice section coverage_after = %v, want 1: %v", rs["coverage_after"], rs)
	}
	if _, ok := rs["last_reslice"].(string); !ok {
		t.Fatalf("reslice section missing last_reslice timestamp: %v", rs)
	}
	if _, ok := rs["last_error"]; ok {
		t.Fatalf("healthy reslice must not report last_error: %v", rs)
	}
	// The repaired index still answers.
	getJSON(t, ts.URL+"/search?attr=0", http.StatusOK)
	getJSON(t, ts.URL+"/readyz", http.StatusOK)
}
