package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestRetryAfterHint pins the readiness-derived Retry-After contract:
// the hint reflects why the request was turned away instead of a flat
// "1" — transient saturation clears in a second, degradation on the
// apply/probe cadence, and a corpus still loading predicts its own
// remaining time when a WAL replay is measuring one, clamped to the
// [1,30]s band.
func TestRetryAfterHint(t *testing.T) {
	cases := []struct {
		name   string
		reason string
		setup  func(s *server)
		want   string
	}{
		{name: "build in progress", reason: shedNotReady, want: "5"},
		{name: "saturated", reason: shedSaturated, want: "1"},
		{name: "degraded", reason: shedDegraded, want: "2"},
		{name: "replay almost done", reason: shedNotReady, want: "1",
			setup: func(s *server) {
				s.replay.total.Store(1000)
				s.replay.done.Store(999)
				s.replay.startNano.Store(time.Now().Add(-10 * time.Second).UnixNano())
				s.replay.active.Store(true)
			}},
		{name: "replay crawling clamps to 30", reason: shedNotReady, want: "30",
			setup: func(s *server) {
				s.replay.total.Store(1_000_000)
				s.replay.done.Store(10)
				s.replay.startNano.Store(time.Now().Add(-10 * time.Second).UnixNano())
				s.replay.active.Store(true)
			}},
		{name: "replay with no progress falls back to build hint", reason: shedNotReady, want: "5",
			setup: func(s *server) {
				s.replay.total.Store(1000)
				s.replay.startNano.Store(time.Now().UnixNano())
				s.replay.active.Store(true)
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newServer(config{})
			if tc.setup != nil {
				tc.setup(s)
			}
			if got := s.retryAfterHint(tc.reason); got != tc.want {
				t.Fatalf("retryAfterHint(%s) = %q, want %q", tc.reason, got, tc.want)
			}
		})
	}
}

// TestShedRetryAfterDerivedFromState asserts the hint travels all the
// way out of the handlers: a query shed while the index builds and a
// starting /readyz both carry the build hint, not "1".
func TestShedRetryAfterDerivedFromState(t *testing.T) {
	s := newServer(config{})
	ts := httptest.NewServer(s.routes())
	defer ts.Close()
	for _, path := range []string{"/search?attr=0", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s while building: status %d, want 503", path, resp.StatusCode)
		}
		if got := resp.Header.Get("Retry-After"); got != "5" {
			t.Fatalf("%s while building: Retry-After %q, want the build hint \"5\"", path, got)
		}
	}
}

// Distributed-mode corpus: every process regenerates the same synthetic
// corpus from the same flags, exactly how a real multi-process
// deployment shares a -corpus container.
const (
	distAttrs   = 40
	distHorizon = 300
	distSeed    = 4
	distShards  = 2
)

func distConfig() corpusConfig {
	return corpusConfig{attrs: distAttrs, horizon: distHorizon, seed: distSeed, shards: distShards}
}

// startShardServers boots distShards shard-server tindserves (full
// middleware stack, /shard RPC mounted) and returns their base URLs
// plus the test servers for fault injection.
func startShardServers(t *testing.T) ([]string, []*httptest.Server) {
	t.Helper()
	urls := make([]string, distShards)
	servers := make([]*httptest.Server, distShards)
	for sid := 0; sid < distShards; sid++ {
		cc := distConfig()
		cc.shardServer, cc.shardID = true, sid
		sv, err := loadServing(cc, nil)
		if err != nil {
			t.Fatal(err)
		}
		srv := newServer(config{shardRPC: true})
		srv.install(sv)
		ts := httptest.NewServer(srv.routes())
		t.Cleanup(ts.Close)
		urls[sid], servers[sid] = ts.URL, ts
	}
	return urls, servers
}

// TestDistributedTindserve runs the full three-process topology in one
// test: two shard-server tindserves, a router tindserve over them, and
// a monolithic tindserve as the reference — the same /search, /topk
// and /query/batch requests must answer identically through the router
// and the local engine, and killing a shard must degrade the router to
// explicit 200+partial answers and a degraded /readyz, never a 500 or
// a silently-shrunken result.
func TestDistributedTindserve(t *testing.T) {
	urls, shardServers := startShardServers(t)

	rcc := distConfig()
	rcc.router = strings.Join(urls, ";")
	rcc.legTimeout = 5 * time.Second
	rsv, err := loadServing(rcc, nil)
	if err != nil {
		t.Fatal(err)
	}
	rs := newServer(config{router: true})
	rs.install(rsv)
	rts := httptest.NewServer(rs.routes())
	defer rts.Close()

	msv, err := loadServing(distConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ms := newServer(config{})
	ms.install(msv)
	mts := httptest.NewServer(ms.routes())
	defer mts.Close()

	// Differential: the router's HTTP answers match the local engine's
	// bit for bit (ids, ranking, funnel counters are asserted at the
	// Router level in internal/router; here the rendered JSON bodies).
	paths := []string{
		"/search?attr=0", "/search?attr=7&eps=5&delta=3",
		"/reverse?attr=3", fmt.Sprintf("/topk?attr=%d&k=5", distAttrs-1),
	}
	for _, path := range paths {
		want := getJSON(t, mts.URL+path, http.StatusOK)
		got := getJSON(t, rts.URL+path, http.StatusOK)
		if fmt.Sprint(got["results"]) != fmt.Sprint(want["results"]) {
			t.Fatalf("%s through the router:\n %v\nwant (local engine)\n %v", path, got["results"], want["results"])
		}
		if got["partial"] != nil {
			t.Fatalf("%s answered partial on a healthy cluster: %v", path, got)
		}
	}
	batchBody := `{"queries":[{"attr":"0"},{"attr":"3","mode":"reverse"},{"attr":"5","mode":"topk","k":3}]}`
	wantB := postJSON(t, mts.URL+"/query/batch", batchBody, http.StatusOK)
	gotB := postJSON(t, rts.URL+"/query/batch", batchBody, http.StatusOK)
	wantEntries := wantB["results"].([]interface{})
	gotEntries := gotB["results"].([]interface{})
	if len(gotEntries) != len(wantEntries) {
		t.Fatalf("batch through the router answered %d entries, want %d", len(gotEntries), len(wantEntries))
	}
	for i := range gotEntries {
		// Compare the result sets; wall time and funnel counters
		// legitimately differ between a partitioned and a monolithic
		// engine (the id sets are pinned bit-for-bit in internal/router).
		got := gotEntries[i].(map[string]interface{})["results"]
		want := wantEntries[i].(map[string]interface{})["results"]
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("batch entry %d through the router:\n %v\nwant (local engine)\n %v", i, got, want)
		}
	}

	// Healthy cluster: /readyz ready, /stats names the topology.
	getJSON(t, rts.URL+"/readyz", http.StatusOK)
	st := getJSON(t, rts.URL+"/stats", http.StatusOK)
	if st["shards"].(float64) != distShards || st["router"] == nil {
		t.Fatalf("router /stats missing topology: %v", st)
	}
	sst := getJSON(t, urls[0]+"/stats", http.StatusOK)
	if sst["shard_id"].(float64) != 0 || sst["owned_attributes"].(float64) <= 0 {
		t.Fatalf("shard-server /stats missing partition identity: %v", sst)
	}

	// Kill shard 1: queries answer 200 with the healthy shards' results
	// and an explicit partial marker naming the dead shard.
	shardServers[1].Close()
	out := getJSON(t, rts.URL+"/search?attr=0", http.StatusOK)
	if out["partial"] != true {
		t.Fatalf("query over a dead shard must be marked partial: %v", out)
	}
	if fmt.Sprint(out["shards_failed"]) != "[1]" {
		t.Fatalf("shards_failed = %v, want [1]", out["shards_failed"])
	}
	bout := postJSON(t, rts.URL+"/query/batch", batchBody, http.StatusOK)
	if bout["partial"] != true || fmt.Sprint(bout["shards_failed"]) != "[1]" {
		t.Fatalf("batch over a dead shard: partial=%v shards_failed=%v", bout["partial"], bout["shards_failed"])
	}

	// /readyz degrades with the dead shard named, and carries the
	// degradation retry hint.
	resp, err := http.Get(rts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("router /readyz with a dead shard: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "2" {
		t.Fatalf("degraded /readyz Retry-After %q, want \"2\"", resp.Header.Get("Retry-After"))
	}
}
