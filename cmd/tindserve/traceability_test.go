package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"tind/internal/datagen"
	"tind/internal/index"
	"tind/internal/obs"
	"tind/internal/shard"
)

// eventJSON mirrors the /debug/events rendering of one wide event.
type eventJSON struct {
	Seq        uint64             `json:"seq"`
	Kind       string             `json:"kind"`
	QueryID    uint64             `json:"query_id"`
	Mode       string             `json:"mode"`
	Endpoint   string             `json:"endpoint"`
	Status     int                `json:"status"`
	BatchSize  int                `json:"batch_size"`
	DurationMs float64            `json:"duration_ms"`
	ErrorClass string             `json:"error_class"`
	Candidates int                `json:"candidates"`
	Results    int                `json:"results"`
	Phases     map[string]float64 `json:"phases_ms"`
	Shards     []struct {
		Shard      int     `json:"shard"`
		ElapsedMs  float64 `json:"elapsed_ms"`
		Candidates int     `json:"candidates"`
	} `json:"shards"`
	Trace []struct {
		Name string `json:"name"`
	} `json:"trace"`
}

// getEvents fetches /debug/events with the given query string and
// decodes the response.
func getEvents(t *testing.T, base, query string) []eventJSON {
	t.Helper()
	resp, err := http.Get(base + "/debug/events" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/events%s: status %d", query, resp.StatusCode)
	}
	var out struct {
		Count  int         `json:"count"`
		Events []eventJSON `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding /debug/events: %v", err)
	}
	if out.Count != len(out.Events) {
		t.Fatalf("count %d != len(events) %d", out.Count, len(out.Events))
	}
	return out.Events
}

// TestBatchSlowQueryLog guards the regression where POST /query/batch
// bypassed the slow-query middleware contract: handleBatch never noted
// its stats, so a slow batch logged without a phase breakdown or trace.
func TestBatchSlowQueryLog(t *testing.T) {
	s, ts := testServerConfig(t, config{slowQuery: time.Nanosecond})
	cap := captureLog(s)

	body := `{"queries": [
		{"attr": "0", "eps": 3, "delta": 7},
		{"attr": "1", "mode": "reverse", "eps": 3}
	]}`
	resp, err := http.Post(ts.URL+"/query/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	qid := resp.Header.Get("X-Query-ID")
	if qid == "" {
		t.Fatal("batch response missing X-Query-ID header")
	}

	lines := cap.lines()
	if len(lines) != 1 {
		t.Fatalf("slow-query log lines: %d, want 1: %q", len(lines), lines)
	}
	for _, want := range []string{
		`msg="slow query"`, "qid=" + qid, "method=POST", "/query/batch",
		"status=200", "phases[", "mt_prune=", "validate=", "trace[",
	} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("batch slow-query line missing %q: %s", want, lines[0])
		}
	}
}

// TestQueryWideEvent checks that a single query records one wide event,
// retrievable through /debug/events with the query ID the client saw in
// X-Query-ID.
func TestQueryWideEvent(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/search?attr=0&eps=3&delta=7")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	qid, err := strconv.ParseUint(resp.Header.Get("X-Query-ID"), 10, 64)
	if err != nil {
		t.Fatalf("bad X-Query-ID %q: %v", resp.Header.Get("X-Query-ID"), err)
	}

	var ev *eventJSON
	for _, e := range getEvents(t, ts.URL, "?kind=query&mode=forward") {
		if e.QueryID == qid && e.Endpoint == "/search" {
			ev = &e
			break
		}
	}
	if ev == nil {
		t.Fatalf("no query event with query_id %d", qid)
	}
	if ev.Status != http.StatusOK || ev.ErrorClass != "" {
		t.Errorf("event status=%d error_class=%q, want 200 and empty", ev.Status, ev.ErrorClass)
	}
	if ev.DurationMs <= 0 {
		t.Errorf("event duration_ms = %g, want > 0", ev.DurationMs)
	}
	if len(ev.Phases) == 0 {
		t.Error("event carries no phase breakdown")
	}
	// Fresh server: the tail sampler is in warmup and keeps every trace.
	if len(ev.Trace) == 0 {
		t.Error("event trace dropped during sampler warmup")
	}
}

// TestDebugEventsParams exercises the /debug/events filter surface:
// malformed parameters answer 400, the duration filter excludes fast
// events.
func TestDebugEventsParams(t *testing.T) {
	_, ts := testServer(t)
	getJSON(t, ts.URL+"/search?attr=0", http.StatusOK)

	for _, bad := range []string{
		"?min_duration=fast", "?error=perhaps", "?limit=0", "?limit=1000000", "?limit=x",
	} {
		resp, err := http.Get(ts.URL + "/debug/events" + bad)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /debug/events%s: status %d, want 400", bad, resp.StatusCode)
		}
	}

	// No query in this process takes ten minutes.
	if evs := getEvents(t, ts.URL, "?min_duration=10m"); len(evs) != 0 {
		t.Errorf("min_duration=10m returned %d events, want 0", len(evs))
	}
	if evs := getEvents(t, ts.URL, "?kind=query&limit=1"); len(evs) > 1 {
		t.Errorf("limit=1 returned %d events", len(evs))
	}
}

// TestSLOEndpoint checks that /slo serves every declared objective as
// valid JSON with its burn-rate windows.
func TestSLOEndpoint(t *testing.T) {
	s, ts := testServerConfig(t, config{sloLatency: 500 * time.Millisecond})
	s.slo.Tick() // baseline
	getJSON(t, ts.URL+"/search?attr=0", http.StatusOK)
	s.slo.Tick()

	resp, err := http.Get(ts.URL + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /slo: status %d", resp.StatusCode)
	}
	var out struct {
		Healthy    bool `json:"healthy"`
		Objectives []struct {
			Name    string  `json:"name"`
			Target  float64 `json:"target"`
			Windows []struct {
				Window   string  `json:"window"`
				BurnRate float64 `json:"burn_rate"`
			} `json:"windows"`
		} `json:"objectives"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding /slo: %v", err)
	}
	names := map[string]bool{}
	for _, o := range out.Objectives {
		names[o.Name] = true
		if len(o.Windows) != 2 {
			t.Errorf("objective %s: %d windows, want 2", o.Name, len(o.Windows))
		}
		if o.Target <= 0 || o.Target >= 1 {
			t.Errorf("objective %s: target %g out of (0,1)", o.Name, o.Target)
		}
	}
	for _, want := range []string{"query_latency", "http_error_ratio", "ingest_staleness"} {
		if !names[want] {
			t.Errorf("/slo missing objective %q (got %v)", want, names)
		}
	}
}

// TestOpenMetricsNegotiation checks the Accept-driven switch between the
// Prometheus 0.0.4 text format and OpenMetrics on /metrics.
func TestOpenMetricsNegotiation(t *testing.T) {
	_, ts := testServer(t)
	getJSON(t, ts.URL+"/search?attr=0", http.StatusOK)

	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("content type %q, want openmetrics", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.HasSuffix(strings.TrimRight(text, "\n"), "# EOF") {
		t.Error("OpenMetrics exposition does not end with # EOF")
	}
	// The query above left an exemplar on the aggregate latency histogram.
	if !strings.Contains(text, `tind_http_query_seconds_bucket`) {
		t.Fatal("missing tind_http_query_seconds buckets")
	}
	if !strings.Contains(text, `query_id="`) {
		t.Error("OpenMetrics exposition carries no query_id exemplar")
	}
}

// testShardedServer builds a server over a scatter-gather index so shard
// fault injection is reachable from HTTP tests.
func testShardedServer(t *testing.T, cfg config, shards int) (*server, string, *shard.ShardedIndex) {
	t.Helper()
	c, err := datagen.Generate(datagen.Config{Seed: 4, Attributes: 80, Horizon: 500, AttrsPerDomain: 20})
	if err != nil {
		t.Fatal(err)
	}
	opt := index.DefaultOptions(c.Dataset.Horizon())
	opt.Reverse = true
	sx, err := shard.Build(c.Dataset, shard.Options{
		Shards: shards, Seed: 4, Index: shard.PartitionOptions(opt, shards),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(cfg)
	s.install(&serving{ds: c.Dataset, idx: sx})
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return s, ts.URL, sx
}

// TestEndToEndTraceability is the acceptance walk of the observability
// stack: under an injected 30ms delay on one shard, a batched query must
// (1) appear in /debug/events as a batch event whose per-shard
// attribution names the straggler, (2) leave an exemplar with its query
// ID on the latency histogram in the OpenMetrics exposition, and
// (3) move the query_latency burn-rate gauge on the next SLO tick.
func TestEndToEndTraceability(t *testing.T) {
	const straggler = 2
	delay := 30 * time.Millisecond
	s, base, sx := testShardedServer(t, config{sloLatency: time.Millisecond}, 4)
	s.slo.Tick() // burn-rate baseline: deltas start at this sample

	sx.SetShardDelay(straggler, delay)
	defer sx.SetShardDelay(straggler, 0)

	body := `{"queries": [
		{"attr": "0", "eps": 3, "delta": 7},
		{"attr": "1", "mode": "reverse", "eps": 3}
	]}`
	resp, err := http.Post(base+"/query/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	qid, err := strconv.ParseUint(resp.Header.Get("X-Query-ID"), 10, 64)
	if err != nil {
		t.Fatalf("bad X-Query-ID: %v", err)
	}

	// (1) The wide event: a batch slower than 10ms with the straggling
	// shard visibly slowest and at least as slow as the injected delay.
	var ev *eventJSON
	for _, e := range getEvents(t, base, "?kind=batch&min_duration=10ms") {
		if e.QueryID == qid {
			ev = &e
			break
		}
	}
	if ev == nil {
		t.Fatalf("no batch event with query_id %d above 10ms", qid)
	}
	if ev.BatchSize != 2 || ev.Endpoint != "/query/batch" {
		t.Errorf("event batch_size=%d endpoint=%q", ev.BatchSize, ev.Endpoint)
	}
	if len(ev.Shards) != 4 {
		t.Fatalf("event shard attribution has %d legs, want 4", len(ev.Shards))
	}
	slowest := ev.Shards[0]
	for _, sh := range ev.Shards[1:] {
		if sh.ElapsedMs > slowest.ElapsedMs {
			slowest = sh
		}
	}
	if slowest.Shard != straggler {
		t.Errorf("slowest leg is shard %d, want injected straggler %d (%+v)", slowest.Shard, straggler, ev.Shards)
	}
	if min := float64(delay) / float64(time.Millisecond); slowest.ElapsedMs < min {
		t.Errorf("straggler leg %.2fms, want >= %.0fms", slowest.ElapsedMs, min)
	}

	// (2) The exemplar: the OpenMetrics exposition links some latency
	// bucket to exactly this query ID.
	req, _ := http.NewRequest("GET", base+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	mresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	mbody, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	marker := fmt.Sprintf(`# {query_id="%d"}`, qid)
	found := false
	for _, line := range strings.Split(string(mbody), "\n") {
		if strings.HasPrefix(line, "tind_http_query_seconds_bucket") && strings.Contains(line, marker) {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no tind_http_query_seconds bucket carries exemplar %s", marker)
	}

	// (3) The burn rate: one query above the 1ms objective threshold
	// burns budget in every window on the next tick.
	s.slo.Tick()
	snap := obs.Default().Snapshot()
	for _, window := range []string{"5m", "1h"} {
		v := snap.Value("tind_slo_burn_rate", obs.L("slo", "query_latency"), obs.L("window", window))
		if v <= 0 {
			t.Errorf("tind_slo_burn_rate{slo=query_latency,window=%s} = %g, want > 0", window, v)
		}
	}
}

// TestReadyzSLOBurnDegrade checks the opt-in coupling of the SLO engine
// to readiness: with -slo-burn-degrade set, a sustained budget burn in
// every window flips /readyz to 503 degraded.
func TestReadyzSLOBurnDegrade(t *testing.T) {
	s, ts := testServerConfig(t, config{sloLatency: time.Nanosecond, sloBurnDegrade: 1})
	getJSON(t, ts.URL+"/readyz", http.StatusOK) // healthy before any burn history

	s.slo.Tick() // baseline
	for i := 0; i < 12; i++ {
		getJSON(t, ts.URL+"/search?attr=0", http.StatusOK)
	}
	s.slo.Tick()
	if reason := s.slo.Degraded(); reason == "" {
		t.Fatal("SLO engine not degraded after 12 budget-burning queries")
	}
	out := getJSON(t, ts.URL+"/readyz", http.StatusServiceUnavailable)
	if out["status"] != "degraded" {
		t.Fatalf("readyz body: %v", out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "query_latency") {
		t.Errorf("degraded reason %q does not name the burning objective", msg)
	}
}
