// Command metricslint validates the observability surface of a running
// tindserve: the Prometheus text exposition on /metrics (every sample
// line must parse, every metric family must carry non-empty HELP and a
// known TYPE, every histogram must close with a +Inf bucket), the
// OpenMetrics rendering (terminated by # EOF, exemplars syntactically
// valid), and the JSON debugging endpoints /debug/events and /slo.
//
// CI boots a tiny-corpus server and points this tool at it (see
// scripts/metricslint.sh); a non-zero exit means a metric was added or
// changed without keeping the exposition contract.
//
// Usage:
//
//	metricslint -url http://127.0.0.1:8080
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// sampleRe matches one text-format sample line: a metric name, optional
// {labels}, a value, and an optional timestamp. Exemplars (OpenMetrics
// " # {...} value [ts]" suffixes) are stripped before matching.
var sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)( [0-9.e+-]+)?$`)

// knownTypes are the exposition TYPE values this codebase emits.
var knownTypes = map[string]bool{"counter": true, "gauge": true, "histogram": true}

type lintError struct {
	context string
	msg     string
}

func (e lintError) String() string { return e.context + ": " + e.msg }

type linter struct {
	errs []lintError
}

func (l *linter) errorf(context, format string, args ...interface{}) {
	l.errs = append(l.errs, lintError{context, fmt.Sprintf(format, args...)})
}

// family strips the sample-name suffixes that samples of one metric
// family share: histogram series and the counter _total convention.
func family(name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suffix) {
			return strings.TrimSuffix(name, suffix)
		}
	}
	return name
}

// lintExposition checks one text exposition (Prometheus 0.0.4 or
// OpenMetrics). openMetrics toggles the format-specific rules: the
// # EOF terminator requirement, exemplar validation, and the
// counter-metadata-without-_total naming convention.
func (l *linter) lintExposition(context, text string, openMetrics bool) {
	help := map[string]string{} // family -> help text
	typ := map[string]string{}  // family -> type
	families := map[string]bool{}
	infBucket := map[string]bool{} // histogram family -> saw le="+Inf"
	sawEOF := false

	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		ctx := fmt.Sprintf("%s:%d", context, lineNo)
		switch {
		case line == "":
			continue
		case line == "# EOF":
			sawEOF = true
			continue
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, text, ok := strings.Cut(rest, " ")
			if !ok || strings.TrimSpace(text) == "" {
				l.errorf(ctx, "HELP line without help text: %q", line)
				continue
			}
			help[name] = text
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, t, ok := strings.Cut(rest, " ")
			if !ok || !knownTypes[t] {
				l.errorf(ctx, "TYPE line with unknown type: %q", line)
				continue
			}
			typ[name] = t
		case strings.HasPrefix(line, "#"):
			// Other comments are legal and ignored.
		default:
			sample := line
			if openMetrics {
				if base, ex, ok := strings.Cut(line, " # "); ok {
					sample = strings.TrimRight(base, " ")
					l.lintExemplar(ctx, ex)
				}
			}
			m := sampleRe.FindStringSubmatch(sample)
			if m == nil {
				l.errorf(ctx, "unparseable sample line: %q", line)
				continue
			}
			name, labels, value := m[1], m[2], m[3]
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				l.errorf(ctx, "sample %s: bad value %q", name, value)
			}
			// Resolve the sample to its family: an exact metadata match
			// wins (a gauge may legitimately end in _count), otherwise
			// strip the histogram series suffixes — and under OpenMetrics
			// the _total that counter metadata drops.
			fam := name
			if _, ok := typ[fam]; !ok {
				fam = family(name)
				if openMetrics {
					fam = strings.TrimSuffix(fam, "_total")
				}
			}
			families[fam] = true
			if strings.HasSuffix(name, "_bucket") && strings.Contains(labels, `le="+Inf"`) {
				infBucket[fam] = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		l.errorf(context, "reading exposition: %v", err)
		return
	}

	for fam := range families {
		if strings.TrimSpace(help[fam]) == "" {
			l.errorf(context, "metric family %s has no # HELP text", fam)
		}
		t, ok := typ[fam]
		if !ok {
			l.errorf(context, "metric family %s has no # TYPE line", fam)
			continue
		}
		if t == "histogram" && !infBucket[fam] {
			l.errorf(context, "histogram %s has no le=\"+Inf\" bucket", fam)
		}
	}
	if openMetrics && !sawEOF {
		l.errorf(context, "OpenMetrics exposition not terminated by # EOF")
	}
}

// lintExemplar validates the OpenMetrics exemplar suffix of a bucket
// line: {labels} value [timestamp].
func (l *linter) lintExemplar(ctx, ex string) {
	if !strings.HasPrefix(ex, "{") {
		l.errorf(ctx, "exemplar without label set: %q", ex)
		return
	}
	end := strings.Index(ex, "}")
	if end < 0 {
		l.errorf(ctx, "exemplar labels not closed: %q", ex)
		return
	}
	fields := strings.Fields(ex[end+1:])
	if len(fields) < 1 || len(fields) > 2 {
		l.errorf(ctx, "exemplar needs a value and optional timestamp: %q", ex)
		return
	}
	for _, f := range fields {
		if _, err := strconv.ParseFloat(f, 64); err != nil {
			l.errorf(ctx, "exemplar field %q is not a number", f)
		}
	}
}

// fetch GETs a URL with an optional Accept header and returns the body.
func fetch(client *http.Client, url, accept string) (string, string, error) {
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		return "", "", err
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", "", fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(body), resp.Header.Get("Content-Type"), nil
}

// lintJSON asserts a URL answers a JSON object containing the required
// top-level keys.
func (l *linter) lintJSON(client *http.Client, url string, requiredKeys ...string) {
	body, _, err := fetch(client, url, "")
	if err != nil {
		l.errorf(url, "%v", err)
		return
	}
	var obj map[string]interface{}
	if err := json.Unmarshal([]byte(body), &obj); err != nil {
		l.errorf(url, "response is not a JSON object: %v", err)
		return
	}
	for _, k := range requiredKeys {
		if _, ok := obj[k]; !ok {
			l.errorf(url, "JSON response missing key %q", k)
		}
	}
}

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "base URL of a running tindserve")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	flag.Parse()

	client := &http.Client{Timeout: *timeout}
	l := &linter{}

	// Prometheus 0.0.4 rendering.
	text, ct, err := fetch(client, *url+"/metrics", "")
	if err != nil {
		fmt.Fprintf(os.Stderr, "metricslint: %v\n", err)
		os.Exit(1)
	}
	if !strings.HasPrefix(ct, "text/plain") {
		l.errorf("/metrics", "content type %q, want text/plain", ct)
	}
	l.lintExposition("/metrics", text, false)

	// OpenMetrics rendering with exemplars.
	om, ct, err := fetch(client, *url+"/metrics", "application/openmetrics-text")
	if err != nil {
		fmt.Fprintf(os.Stderr, "metricslint: %v\n", err)
		os.Exit(1)
	}
	if !strings.HasPrefix(ct, "application/openmetrics-text") {
		l.errorf("/metrics(openmetrics)", "content type %q, want application/openmetrics-text", ct)
	}
	l.lintExposition("/metrics(openmetrics)", om, true)

	// JSON debugging endpoints.
	l.lintJSON(client, *url+"/debug/events", "count", "events")
	l.lintJSON(client, *url+"/slo", "healthy", "objectives")

	if len(l.errs) > 0 {
		for _, e := range l.errs {
			fmt.Fprintf(os.Stderr, "metricslint: %s\n", e)
		}
		fmt.Fprintf(os.Stderr, "metricslint: %d problem(s)\n", len(l.errs))
		os.Exit(1)
	}
	fmt.Println("metricslint: exposition and debug endpoints clean")
}
