// Command allpairs discovers the complete set of temporal inclusion
// dependencies in a corpus and compares it with static IND discovery on
// the latest snapshot (the §5.2 experiment at configurable scale).
//
// Usage:
//
//	allpairs -attrs 5000 -eps 3 -delta 7
//	allpairs -attrs 1000 -print | head      # list discovered tINDs
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tind/internal/bloom"
	"tind/internal/core"
	"tind/internal/datagen"
	"tind/internal/index"
	"tind/internal/many"
	"tind/internal/obs"
	"tind/internal/shard"
	"tind/internal/timeline"
)

// discoverer is the slice of the query contract this command needs; both
// the monolithic index.Index and shard.ShardedIndex satisfy it.
type discoverer interface {
	AllPairsContext(ctx context.Context, p core.Params, workers int) ([]index.Pair, error)
	Stats() index.BuildStats
}

func main() {
	var (
		attrs   = flag.Int("attrs", 2000, "number of attributes")
		horizon = flag.Int("horizon", 1500, "observation period in days")
		seed    = flag.Int64("seed", 1, "random seed")
		eps     = flag.Float64("eps", 3, "ε in days (uniform weighting)")
		delta   = flag.Int("delta", 7, "δ in days")
		workers = flag.Int("workers", 0, "query workers (0 = all cores)")
		shards  = flag.Int("shards", 1, "discover through a sharded scatter-gather index with this many shards (1 = monolithic)")
		doPrint = flag.Bool("print", false, "print every discovered tIND")
		timeout = flag.Duration("timeout", 0, "abort discovery after this long (0 = no limit)")
		metrics = flag.Bool("metrics", false, "dump the collected metrics to stderr on exit (Prometheus text format)")
	)
	flag.Parse()
	if *metrics {
		defer dumpMetrics()
	}

	// The n² discovery loop can run for hours on a big corpus; Ctrl-C or
	// the -timeout budget cancels it mid-validation instead of leaving an
	// unkillable CPU burner.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	c, err := datagen.Generate(datagen.Config{
		Seed: *seed, Attributes: *attrs, Horizon: timeline.Time(*horizon),
	})
	if err != nil {
		fatal(err)
	}
	ds := c.Dataset
	p := core.Params{Epsilon: *eps, Delta: timeline.Time(*delta), Weight: timeline.Uniform(ds.Horizon())}

	opt := index.DefaultOptions(ds.Horizon())
	opt.Params = p
	opt.Seed = *seed
	start := time.Now()
	var idx discoverer
	if *shards > 1 {
		idx, err = shard.Build(ds, shard.Options{
			Shards: *shards, Seed: *seed, Index: shard.PartitionOptions(opt, *shards),
		})
	} else {
		idx, err = index.Build(ds, opt)
	}
	if err != nil {
		fatal(err)
	}
	engine := "index"
	if *shards > 1 {
		engine = fmt.Sprintf("%d-shard index", *shards)
	}
	fmt.Fprintf(os.Stderr, "%s built over %d attributes in %v (%.1f MB)\n",
		engine, ds.Len(), time.Since(start).Round(time.Millisecond),
		float64(idx.Stats().MemoryBytes)/(1<<20))

	pairs, err := idx.AllPairsContext(ctx, p, *workers)
	if err != nil {
		if errors.Is(err, index.ErrCanceled) || errors.Is(err, index.ErrDeadlineExceeded) {
			fatal(fmt.Errorf("discovery aborted: %w", err))
		}
		fatal(err)
	}
	total := time.Since(start)

	static, err := many.NewStatic(ds, ds.Horizon()-1, bloom.Params{M: 4096, K: 2})
	if err != nil {
		fatal(err)
	}
	staticPairs := static.AllPairs()

	genuine := 0
	for _, pr := range pairs {
		if c.Truth.Genuine(pr.LHS, pr.RHS) {
			genuine++
		}
	}
	fmt.Printf("tINDs (ε=%gd, δ=%dd): %d  (genuine %d, precision %.1f%%)\n",
		*eps, *delta, len(pairs), genuine, 100*float64(genuine)/float64(max(1, len(pairs))))
	fmt.Printf("static INDs:          %d\n", len(staticPairs))
	fmt.Printf("total wall time:      %v\n", total.Round(time.Millisecond))

	if *doPrint {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		for _, pr := range pairs {
			fmt.Fprintf(w, "%s ⊆ %s\n", ds.Attr(pr.LHS).Meta(), ds.Attr(pr.RHS).Meta())
		}
	}
}

// dumpMetrics writes the final state of every instrument — index build
// times, Bloom fill ratios, query-phase histograms of the discovery run —
// so a batch job leaves the same numbers a scraped server would.
func dumpMetrics() {
	fmt.Fprintln(os.Stderr, "--- metrics ---")
	if err := obs.Default().WritePrometheus(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "allpairs: writing metrics:", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "allpairs:", err)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
