// Command csvhist ingests a corpus of timestamped CSV snapshots (the
// open-government-data setting of the paper's future work) and writes a
// preprocessed binary dataset ready for tindsearch/allpairs.
//
// Expected layout: one YYYY-MM-DD directory per snapshot, CSV files
// inside; each (file, column) pair becomes one attribute history.
//
// Usage:
//
//	csvhist -dir ./snapshots -out corpus.tind
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tind/internal/opendata"
	"tind/internal/persist"
	"tind/internal/preprocess"
)

func main() {
	var (
		dir         = flag.String("dir", "", "snapshot corpus root (YYYY-MM-DD subdirectories)")
		out         = flag.String("out", "", "output binary dataset")
		startDate   = flag.String("start", "", "observation start (YYYY-MM-DD; default: first snapshot)")
		endDate     = flag.String("end", "", "observation end (YYYY-MM-DD; default: day after last snapshot)")
		minVersions = flag.Int("min-versions", 2, "minimum versions per attribute (snapshots change less often than wiki pages)")
	)
	flag.Parse()
	if *dir == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "csvhist: -dir and -out are required")
		os.Exit(2)
	}

	recs, err := opendata.LoadSnapshots(os.DirFS(*dir))
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loaded %d column histories\n", len(recs))

	// Default window: span of the observations.
	var start, end time.Time
	for _, r := range recs {
		for _, o := range r.Observations {
			if start.IsZero() || o.Time.Before(start) {
				start = o.Time
			}
			if o.Time.After(end) {
				end = o.Time
			}
		}
	}
	end = end.AddDate(0, 0, 1)
	if *startDate != "" {
		if start, err = time.Parse(opendata.DateLayout, *startDate); err != nil {
			fatal(fmt.Errorf("bad -start: %w", err))
		}
	}
	if *endDate != "" {
		if end, err = time.Parse(opendata.DateLayout, *endDate); err != nil {
			fatal(fmt.Errorf("bad -end: %w", err))
		}
	}

	ds, rep, err := preprocess.Run(recs, preprocess.Config{
		Start: start, End: end, MinVersions: *minVersions,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "preprocessing: %+v\n", rep)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := persist.Write(ds, f); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d attributes over %d days to %s\n", ds.Len(), ds.Horizon(), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "csvhist:", err)
	os.Exit(1)
}
