package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tind/internal/datagen"
	"tind/internal/persist"
	"tind/internal/timeline"
	"tind/internal/wiki"
)

func TestLoadDatasetSynthetic(t *testing.T) {
	ds, err := loadDataset("", "", 50, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 50 || ds.Horizon() != 300 {
		t.Fatalf("synthetic dataset: %d attrs over %d days", ds.Len(), ds.Horizon())
	}
}

func TestLoadDatasetBinaryCorpus(t *testing.T) {
	c, err := datagen.Generate(datagen.Config{Seed: 1, Attributes: 30, Horizon: 200, AttrsPerDomain: 15})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "c.tind")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := persist.Write(c.Dataset, f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	ds, err := loadDataset(path, "", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 30 {
		t.Fatalf("loaded %d attributes", ds.Len())
	}
}

func TestLoadDatasetRevisions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "revs.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	start := time.Date(2007, 2, 1, 0, 0, 0, 0, time.UTC)
	revs := []wiki.Revision{
		{Page: "P", ID: 1, Timestamp: start,
			Wikitext: "{|\n! A\n|-\n| x1\n|-\n| x2\n|-\n| x3\n|-\n| x4\n|-\n| x5\n|}"},
		{Page: "P", ID: 2, Timestamp: start.AddDate(0, 0, 10),
			Wikitext: "{|\n! A\n|-\n| x1\n|-\n| x2\n|-\n| x3\n|-\n| x4\n|-\n| x5\n|-\n| x6\n|}"},
	}
	for _, r := range revs {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	ds, err := loadDataset("", path, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The default §5.1 filters require ≥5 versions; the point here is the
	// path exercises extraction + preprocessing without error.
	if ds.Horizon() != timeline.Time(11) {
		t.Fatalf("horizon = %d, want 11", ds.Horizon())
	}
}

func TestLoadDatasetErrors(t *testing.T) {
	if _, err := loadDataset(filepath.Join(t.TempDir(), "missing.tind"), "", 0, 0, 0); err == nil {
		t.Error("missing corpus file must fail")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	os.WriteFile(empty, nil, 0o644)
	if _, err := loadDataset("", empty, 0, 0, 0); err == nil {
		t.Error("empty revision stream must fail")
	}
}

func TestResolve(t *testing.T) {
	ds, err := loadDataset("", "", 40, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h := resolve(ds, "0"); h == nil || h.ID() != 0 {
		t.Fatal("numeric id resolution failed")
	}
	if h := resolve(ds, "9999"); h != nil {
		t.Fatal("out-of-range id must not resolve")
	}
	if h := resolve(ds, "list of d0"); h == nil {
		t.Fatal("case-insensitive page substring must resolve")
	}
	if h := resolve(ds, "no such page"); h != nil {
		t.Fatal("unknown substring must not resolve")
	}
	if h := resolve(ds, ""); h != nil {
		t.Fatal("empty argument must not resolve")
	}
}
