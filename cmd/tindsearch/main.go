// Command tindsearch is an interactive tIND explorer: it builds the index
// over a corpus (synthetic, or a wikitext revision stream produced by
// cmd/datagen) and answers search and reverse-search queries from a small
// REPL — the user-facing exploration scenario of the paper's introduction.
//
// Usage:
//
//	tindsearch -attrs 2000                       # synthetic corpus
//	tindsearch -revisions revisions.jsonl        # real extraction pipeline
//
// REPL commands:
//
//	find <attr-id|page-substring>    attributes the query is contained in
//	rfind <attr-id|page-substring>   attributes contained in the query
//	topk <k> <attr-id|page-substring> best-contained attributes by violation
//	why <lhs> <rhs>                  violated intervals of lhs ⊆ rhs
//	show <attr-id>                   attribute metadata and versions
//	params <eps> <delta>             change the relaxation
//	quit
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"tind/internal/core"
	"tind/internal/datagen"
	"tind/internal/history"
	"tind/internal/index"
	"tind/internal/obs"
	"tind/internal/persist"
	"tind/internal/preprocess"
	"tind/internal/timeline"
	"tind/internal/wiki"
)

func main() {
	var (
		attrs     = flag.Int("attrs", 2000, "synthetic corpus size (ignored with -revisions)")
		horizon   = flag.Int("horizon", 1500, "observation period in days")
		seed      = flag.Int64("seed", 1, "random seed")
		revisions = flag.String("revisions", "", "load a wikitext revision stream (JSONL) instead of generating")
		corpusF   = flag.String("corpus", "", "load a binary dataset (.tind, from cmd/wikiparse or cmd/datagen)")
		eps       = flag.Float64("eps", 3, "ε in days")
		delta     = flag.Int("delta", 7, "δ in days")
		metrics   = flag.Bool("metrics", false, "dump the collected metrics to stderr on exit (Prometheus text format)")
	)
	flag.Parse()
	if *metrics {
		defer dumpMetrics()
	}

	ds, err := loadDataset(*corpusF, *revisions, *attrs, *horizon, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "dataset: %d attributes over %d days\n", ds.Len(), ds.Horizon())

	opt := index.DefaultOptions(ds.Horizon())
	opt.Params = core.Params{Epsilon: *eps, Delta: timeline.Time(*delta), Weight: timeline.Uniform(ds.Horizon())}
	opt.Reverse = true
	opt.Seed = *seed
	start := time.Now()
	idx, err := index.Build(ds, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "index built in %v (%.1f MB, %d slices)\n",
		time.Since(start).Round(time.Millisecond),
		float64(idx.Stats().MemoryBytes)/(1<<20), idx.Stats().Slices)

	repl(ds, idx, opt.Params)
}

func loadDataset(corpusFile, revFile string, attrs, horizon int, seed int64) (*history.Dataset, error) {
	if corpusFile != "" {
		f, err := os.Open(corpusFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return persist.Read(f)
	}
	if revFile == "" {
		c, err := datagen.Generate(datagen.Config{
			Seed: seed, Attributes: attrs, Horizon: timeline.Time(horizon),
		})
		if err != nil {
			return nil, err
		}
		return c.Dataset, nil
	}
	f, err := os.Open(revFile)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ex := wiki.NewExtractor()
	dec := json.NewDecoder(bufio.NewReader(f))
	var first, last wiki.Revision
	n := 0
	for {
		var r wiki.Revision
		if err := dec.Decode(&r); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if n == 0 {
			first = r
		}
		last = r
		n++
		if err := ex.Process(r); err != nil {
			return nil, err
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("no revisions in %s", revFile)
	}
	startDay := first.Timestamp.Truncate(24 * time.Hour)
	ds, rep, err := preprocess.Run(ex.Records(), preprocess.Config{
		Start: startDay,
		End:   last.Timestamp.Add(24 * time.Hour).Truncate(24 * time.Hour),
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "extracted %d revisions; preprocessing: %+v\n", n, rep)
	return ds, nil
}

func repl(ds *history.Dataset, idx *index.Index, p core.Params) {
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		switch fields[0] {
		case "quit", "exit", "q":
			return
		case "params":
			if len(fields) != 3 {
				fmt.Println("usage: params <eps-days> <delta-days>")
				break
			}
			e, err1 := strconv.ParseFloat(fields[1], 64)
			d, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				fmt.Println("usage: params <eps-days> <delta-days>")
				break
			}
			p = core.Params{Epsilon: e, Delta: timeline.Time(d), Weight: timeline.Uniform(ds.Horizon())}
			fmt.Printf("now using %v\n", p)
		case "show":
			if h := resolve(ds, strings.Join(fields[1:], " ")); h != nil {
				meta := h.Meta()
				fmt.Printf("#%d %s — %d versions, observed [%d,%d)\n",
					h.ID(), meta, h.NumVersions(), h.ObservedFrom(), h.ObservedUntil())
				for i := 0; i < h.NumVersions() && i < 5; i++ {
					v := h.Version(i)
					fmt.Printf("  day %d: %v\n", v.Start, ds.Dict().Strings(v.Values))
				}
				if h.NumVersions() > 5 {
					fmt.Printf("  … %d more versions\n", h.NumVersions()-5)
				}
			}
		case "why":
			if len(fields) != 3 {
				fmt.Println("usage: why <lhs-attr> <rhs-attr>")
				break
			}
			lhs := resolve(ds, fields[1])
			rhs := resolve(ds, fields[2])
			if lhs == nil || rhs == nil {
				break
			}
			vios := core.Explain(lhs, rhs, p)
			var total float64
			for _, v := range vios {
				fmt.Printf("  violated %v (weight %.1f, e.g. missing %q)\n",
					v.Interval, v.Weight, ds.Dict().String(v.Missing))
				total += v.Weight
			}
			verdict := "holds"
			if total > p.Epsilon {
				verdict = "fails"
			}
			fmt.Printf("total violation %.1f vs ε=%g → tIND %s\n", total, p.Epsilon, verdict)
		case "topk":
			if len(fields) < 3 {
				fmt.Println("usage: topk <k> <attr>")
				break
			}
			k, err := strconv.Atoi(fields[1])
			if err != nil || k <= 0 {
				fmt.Println("usage: topk <k> <attr>")
				break
			}
			h := resolve(ds, strings.Join(fields[2:], " "))
			if h == nil {
				break
			}
			res, err := idx.Query(context.Background(), h, index.QueryOptions{
				Mode: index.ModeTopK,
				K:    k,
				Params: core.Params{Delta: p.Delta, Weight: p.Weight},
			})
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			for _, r := range res.Ranked {
				fmt.Printf("  #%d %s (violation %.1f)\n", r.ID, ds.Attr(r.ID).Meta(), r.Violation)
			}
		case "find", "rfind":
			h := resolve(ds, strings.Join(fields[1:], " "))
			if h == nil {
				break
			}
			mode := index.ModeForward
			if fields[0] == "rfind" {
				mode = index.ModeReverse
			}
			res, err := idx.Query(context.Background(), h, index.QueryOptions{Mode: mode, Params: p})
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			for _, id := range res.IDs {
				fmt.Printf("  #%d %s\n", id, ds.Attr(id).Meta())
			}
			fmt.Printf("%d results in %v (candidates: %d → %d → validated %d)\n",
				len(res.IDs), res.Stats.Elapsed.Round(time.Microsecond),
				res.Stats.InitialCandidates, res.Stats.AfterSlices, res.Stats.Validated)
		default:
			fmt.Println("commands: find | rfind | topk | why | show | params | quit")
		}
		fmt.Print("> ")
	}
}

// resolve finds an attribute by numeric id or by page-name substring.
func resolve(ds *history.Dataset, arg string) *history.History {
	if arg == "" {
		fmt.Println("missing attribute (id or page substring)")
		return nil
	}
	if id, err := strconv.Atoi(arg); err == nil {
		if id < 0 || id >= ds.Len() {
			fmt.Printf("attribute id out of range [0,%d)\n", ds.Len())
			return nil
		}
		return ds.Attr(history.AttrID(id))
	}
	needle := strings.ToLower(arg)
	for _, h := range ds.Attrs() {
		if strings.Contains(strings.ToLower(h.Meta().Page), needle) {
			return h
		}
	}
	fmt.Printf("no attribute matches %q\n", arg)
	return nil
}

// dumpMetrics writes the final state of every instrument — index build
// times, Bloom fill ratios, the phase histograms of the session's queries
// — so an exploration session leaves the same numbers a scraped server
// would. Mirrors the -metrics flag of cmd/allpairs and cmd/experiments.
func dumpMetrics() {
	fmt.Fprintln(os.Stderr, "--- metrics ---")
	if err := obs.Default().WritePrometheus(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tindsearch: writing metrics:", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tindsearch:", err)
	os.Exit(1)
}
