// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp all
//	experiments -exp fig7,fig15 -attrs 20000 -queries 3000
//
// Every experiment prints the rows/series of the corresponding paper
// table or figure; EXPERIMENTS.md maps the output to the paper's numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tind/internal/experiments"
	"tind/internal/obs"
	"tind/internal/timeline"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		attrs   = flag.Int("attrs", 2000, "number of attributes in the synthetic corpus")
		horizon = flag.Int("horizon", 1500, "observation period in days")
		queries = flag.Int("queries", 300, "queries per runtime measurement")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", 0, "all-pairs workers (0 = all cores)")
		list    = flag.Bool("list", false, "list available experiments and exit")
		metrics = flag.Bool("metrics", false, "dump the collected metrics to stderr on exit (Prometheus text format)")
	)
	flag.Parse()
	if *metrics {
		// Final stats dump: the per-phase histograms and fill-ratio gauges
		// accumulated across every experiment run in this process.
		defer func() {
			fmt.Fprintln(os.Stderr, "--- metrics ---")
			if err := obs.Default().WritePrometheus(os.Stderr); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: writing metrics:", err)
			}
		}()
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := experiments.Config{
		Attrs:   *attrs,
		Horizon: timeline.Time(*horizon),
		Queries: *queries,
		Seed:    *seed,
		Workers: *workers,
	}

	var ids []string
	if *exp == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}

	for _, id := range ids {
		e, ok := experiments.Get(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		if err := e.Run(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
