package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tind/internal/obs"
)

// reportFormat versions the JSON schema; bump on incompatible changes so
// a gate never silently compares across schemas.
const reportFormat = "tindbench/1"

// Report is the structured output of one tindbench run. The schema is
// documented in DESIGN.md §7.3.
type Report struct {
	Format     string     `json:"format"`
	Label      string     `json:"label"`
	GoVersion  string     `json:"go"`
	GOOS       string     `json:"goos"`
	GOARCH     string     `json:"goarch"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Seed       int64      `json:"seed"`
	Horizon    int        `json:"horizon_days"`
	Sizes      []int      `json:"sizes"`
	Shards     int        `json:"shards,omitempty"`
	Scenarios  []Scenario `json:"scenarios"`
}

// Scenario is one measured pipeline stage at one corpus size. With
// -repeat N the timing fields (WallNs, NsPerOp, Obs) come from the
// fastest repetition while the memory fields (BytesPerOp, AllocsPerOp,
// PeakHeapBytes) keep the worst repetition — see DESIGN.md §7.3.
type Scenario struct {
	Name string `json:"name"`
	Ops  int64  `json:"ops"`
	// WallNs is the fastest repetition's wall time; NsPerOp is that wall
	// time divided per op as a float, so high-op scenarios never truncate
	// to zero and disarm the gate.
	WallNs        int64   `json:"wall_ns"`
	NsPerOp       float64 `json:"ns_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	PeakHeapBytes uint64  `json:"peak_heap_bytes"`
	// Obs is the scenario-scoped diff of the process metric registry:
	// what this scenario alone did to the candidate funnels, fill
	// ratios, persist volume and GC activity.
	Obs *obs.Snapshot `json:"obs,omitempty"`
}

func writeReport(rep *Report, pathOrDash string) error {
	var w *os.File
	if pathOrDash == "-" {
		w = os.Stdout
	} else {
		f, err := os.Create(pathOrDash)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func readReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, err
	}
	if rep.Format != reportFormat {
		return nil, fmt.Errorf("%s: format %q, want %q", path, rep.Format, reportFormat)
	}
	return &rep, nil
}

// gateConfig is the regression policy of a -baseline comparison.
type gateConfig struct {
	tolerance float64    // default allowed fractional ns/op growth
	overrides []override // per-scenario-pattern tolerances, first match wins
	minWallNs int64      // runs faster than this in either report are not wall-gated
}

type override struct {
	pattern   string
	tolerance float64
}

// Noise floors for the allocation gate: scenarios whose per-op memory
// footprint is below these on either side are not gated — at that scale
// the numbers are dominated by pool warm-up and GC bookkeeping rather
// than the pipeline's own allocation behaviour.
const (
	memBytesFloor  = 64 << 10 // 64 KiB/op
	memAllocsFloor = 100      // allocs/op
)

// counterTolerance bounds drift of the machine-independent work
// counters. With identical seed and sizes the pipeline does identical
// work, so these should match exactly; the slack only absorbs
// scheduling-dependent double-counting (e.g. a retryable batch).
const counterTolerance = 0.05

// gatedCounters are obs counters whose per-scenario delta is gated
// machine-independently, summed over label sets. Exact checks growing
// means the pruning stages lost power; emitted results changing means
// the answer itself changed.
var gatedCounters = []string{
	"tind_query_exact_checks_total",
	"tind_query_results_total",
}

// parseGate builds the gate from the -tolerance / -tolerance-override /
// -min-wall flags.
func parseGate(tolerance, overrides string, minWallNs int64) (gateConfig, error) {
	g := gateConfig{minWallNs: minWallNs}
	tol, err := parseTolerance(tolerance)
	if err != nil {
		return g, err
	}
	g.tolerance = tol
	if overrides != "" {
		for _, part := range strings.Split(overrides, ",") {
			pat, val, ok := strings.Cut(strings.TrimSpace(part), "=")
			if !ok {
				return g, fmt.Errorf("bad -tolerance-override entry %q (want pattern=pct)", part)
			}
			tol, err := parseTolerance(val)
			if err != nil {
				return g, err
			}
			if pat == "" {
				return g, fmt.Errorf("empty -tolerance-override pattern in %q", part)
			}
			g.overrides = append(g.overrides, override{pattern: pat, tolerance: tol})
		}
	}
	return g, nil
}

// parseTolerance accepts "10%" or a bare fraction like "0.1".
func parseTolerance(s string) (float64, error) {
	s = strings.TrimSpace(s)
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad tolerance %q", s)
	}
	if pct {
		v /= 100
	}
	return v, nil
}

// toleranceFor resolves the tolerance of one scenario name.
func (g gateConfig) toleranceFor(name string) float64 {
	for _, o := range g.overrides {
		if globMatch(o.pattern, name) {
			return o.tolerance
		}
	}
	return g.tolerance
}

// globMatch matches name against a pattern where '*' spans any run of
// characters, slashes included — so "query/*" covers "query/forward/500".
// (path.Match would stop '*' at '/', making the natural patterns useless
// for two-level scenario names.)
func globMatch(pat, name string) bool {
	parts := strings.Split(pat, "*")
	if len(parts) == 1 {
		return pat == name
	}
	if !strings.HasPrefix(name, parts[0]) {
		return false
	}
	name = name[len(parts[0]):]
	for _, mid := range parts[1 : len(parts)-1] {
		idx := strings.Index(name, mid)
		if idx < 0 {
			return false
		}
		name = name[idx+len(mid):]
	}
	return strings.HasSuffix(name, parts[len(parts)-1])
}

// compare gates cur against base scenario by scenario. It returns the
// regressions (nonzero exit) and informational notes (improvements,
// scenario-set drift). Wall time regresses when cur ns/op exceeds base
// ns/op by more than the scenario's tolerance and both runs are above
// the noise floor; the gated work counters regress when they drift
// beyond counterTolerance in either direction.
func compare(cur, base *Report, g gateConfig) (regressions, notes []string) {
	baseByName := make(map[string]Scenario, len(base.Scenarios))
	for _, sc := range base.Scenarios {
		baseByName[sc.Name] = sc
	}
	seen := make(map[string]bool, len(cur.Scenarios))
	for _, sc := range cur.Scenarios {
		seen[sc.Name] = true
		bs, ok := baseByName[sc.Name]
		if !ok {
			notes = append(notes, fmt.Sprintf("%s: not in baseline (new scenario)", sc.Name))
			continue
		}
		tol := g.toleranceFor(sc.Name)
		if sc.WallNs >= g.minWallNs && bs.WallNs >= g.minWallNs {
			// Prefer the per-op ratio; fall back to the raw wall ratio when
			// either side's ns/op is unusable (e.g. a baseline written by an
			// older run whose integer division truncated it to zero). A row
			// with no usable timing at all is skipped loudly, never silently.
			ratio, metric := 0.0, ""
			switch {
			case bs.NsPerOp > 0 && sc.NsPerOp > 0:
				ratio = sc.NsPerOp / bs.NsPerOp
				metric = fmt.Sprintf("%.0f ns/op vs baseline %.0f", sc.NsPerOp, bs.NsPerOp)
			case bs.WallNs > 0 && sc.WallNs > 0:
				ratio = float64(sc.WallNs) / float64(bs.WallNs)
				metric = fmt.Sprintf("%d ns wall vs baseline %d", sc.WallNs, bs.WallNs)
			default:
				notes = append(notes, fmt.Sprintf(
					"%s: no usable timing (cur %d ns / baseline %d ns); wall gate skipped",
					sc.Name, sc.WallNs, bs.WallNs))
			}
			switch {
			case ratio == 0:
			case ratio > 1+tol:
				regressions = append(regressions, fmt.Sprintf(
					"%s: %s (%+.1f%%, tolerance %.0f%%)",
					sc.Name, metric, 100*(ratio-1), 100*tol))
			case ratio < 1-tol:
				notes = append(notes, fmt.Sprintf("%s: improved — %s (%.1f%%)",
					sc.Name, metric, 100*(1-ratio)))
			}
		}
		// Allocation gate: growth-only, same tolerance schedule as wall
		// time. B/op and allocs/op are near-deterministic for a seeded
		// workload (unlike wall time), but tiny scenarios sit in runtime
		// noise (pool warm-up, GC bookkeeping), so each counter has a
		// floor below which the gate disarms — on either side, so a
		// baseline under the floor never gates a run above it against a
		// noise-dominated denominator. Improvements become notes: an
		// allocation drop is exactly what the batch API is for, and the
		// note is the prompt to re-baseline and lock it in.
		memGates := []struct {
			what  string
			cur   int64
			base  int64
			floor int64
		}{
			{"B/op", sc.BytesPerOp, bs.BytesPerOp, memBytesFloor},
			{"allocs/op", sc.AllocsPerOp, bs.AllocsPerOp, memAllocsFloor},
		}
		for _, m := range memGates {
			if m.cur < m.floor || m.base < m.floor {
				continue
			}
			ratio := float64(m.cur) / float64(m.base)
			switch {
			case ratio > 1+tol:
				regressions = append(regressions, fmt.Sprintf(
					"%s: %d %s vs baseline %d (%+.1f%%, tolerance %.0f%%)",
					sc.Name, m.cur, m.what, m.base, 100*(ratio-1), 100*tol))
			case ratio < 1-tol:
				notes = append(notes, fmt.Sprintf(
					"%s: improved — %d %s vs baseline %d (%.1f%%)",
					sc.Name, m.cur, m.what, m.base, 100*(1-ratio)))
			}
		}
		for _, cname := range gatedCounters {
			curV, ok1 := obsSum(sc, cname)
			baseV, ok2 := obsSum(bs, cname)
			if !ok1 || !ok2 || baseV == 0 {
				continue
			}
			if curV > baseV*(1+counterTolerance) || curV < baseV*(1-counterTolerance) {
				regressions = append(regressions, fmt.Sprintf(
					"%s: %s drifted %.0f → %.0f (seeded work must be stable)",
					sc.Name, cname, baseV, curV))
			}
		}
	}
	for _, sc := range base.Scenarios {
		if !seen[sc.Name] {
			notes = append(notes, fmt.Sprintf("%s: in baseline but not in this run (matrix changed?)", sc.Name))
		}
	}
	return regressions, notes
}

// obsSum totals a metric family over all its label sets in a scenario's
// registry diff.
func obsSum(sc Scenario, name string) (float64, bool) {
	if sc.Obs == nil {
		return 0, false
	}
	total, found := 0.0, false
	for _, m := range sc.Obs.Metrics {
		if m.Name == name {
			total += m.Value
			found = true
		}
	}
	return total, found
}
