// Command tindbench is the repository's macro-benchmark harness: it
// generates seeded synthetic corpora, runs the full pipeline — corpus
// generation, index build, forward/reverse/top-k queries, all-pairs
// discovery and a persist round-trip — over a matrix of corpus sizes,
// and writes a structured BENCH_<label>.json with per-scenario wall
// time, ns/op, allocation counts, peak heap and a scenario-scoped
// obs-registry diff (candidate funnels, Bloom fill ratios, pruning
// power).
//
// Usage:
//
//	tindbench -sizes 500,2000 -seed 1 -label dev
//	tindbench -sizes 500,2000 -baseline BENCH_seed.json -tolerance 10%
//	tindbench -list
//
// With -baseline, the run is compared scenario by scenario against a
// previous report: wall-time regressions beyond the tolerance (default
// -tolerance, overridable per scenario pattern with
// -tolerance-override) and drifts in the machine-independent work
// counters (exact validations, emitted results) exit nonzero, so CI can
// gate on a committed baseline. Scenario sets are deterministic in
// (-sizes, -seed): two runs with the same flags always produce the same
// scenario names, and the same counter values.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"
)

func main() {
	var (
		sizes       = flag.String("sizes", "500,2000", "comma-separated corpus sizes (attributes)")
		seed        = flag.Int64("seed", 1, "random seed for corpora, index and query sampling")
		horizon     = flag.Int("horizon", 1500, "corpus horizon (days)")
		label       = flag.String("label", "local", "report label; default output is BENCH_<label>.json")
		out         = flag.String("out", "", `output path ("-" = stdout; default BENCH_<label>.json)`)
		queries     = flag.Int("queries", 40, "forward/reverse queries per corpus size")
		topkQueries = flag.Int("topk-queries", 8, "top-k queries per corpus size")
		k           = flag.Int("k", 10, "K for the top-k scenario")
		eps         = flag.Float64("eps", 3, "ε in days")
		delta       = flag.Int("delta", 7, "δ in days")
		repeat      = flag.Int("repeat", 1, "runs per scenario; timing reports the fastest, memory the worst")
		shards      = flag.Int("shards", 4, "shard count for the shard_build/shard_query scenarios")
		allpairsMax = flag.Int("allpairs-max", 2000, "run the all-pairs scenario only up to this corpus size (0 = never)")
		list        = flag.Bool("list", false, "print the scenario names this flag set would run, then exit")
		baseline    = flag.String("baseline", "", "compare against a previous report and gate on regressions")
		tolerance   = flag.String("tolerance", "10%", "allowed ns/op regression vs the baseline (e.g. 10% or 0.1)")
		overrides   = flag.String("tolerance-override", "", `per-scenario tolerances, e.g. "allpairs/*=25%,query/*=20%"`)
		minWall     = flag.Duration("min-wall", 2*time.Millisecond, "scenarios faster than this in either run are not wall-gated (noise floor)")
	)
	flag.Parse()

	cfg, err := parseConfig(*sizes, *seed, *horizon, *queries, *topkQueries, *k, *eps, *delta, *repeat, *allpairsMax, *shards)
	if err != nil {
		fatal(err)
	}

	if *list {
		for _, name := range scenarioNames(cfg) {
			fmt.Println(name)
		}
		return
	}

	gate, err := parseGate(*tolerance, *overrides, int64(*minWall))
	if err != nil {
		fatal(err)
	}

	rep, err := runBench(cfg, *label, os.Stderr)
	if err != nil {
		fatal(err)
	}

	path := *out
	if path == "" {
		path = "BENCH_" + *label + ".json"
	}
	if err := writeReport(rep, path); err != nil {
		fatal(err)
	}
	if path != "-" {
		fmt.Fprintf(os.Stderr, "tindbench: wrote %s (%d scenarios)\n", path, len(rep.Scenarios))
	}

	if *baseline != "" {
		base, err := readReport(*baseline)
		if err != nil {
			fatal(fmt.Errorf("baseline: %w", err))
		}
		regressions, notes := compare(rep, base, gate)
		for _, n := range notes {
			fmt.Fprintln(os.Stderr, "tindbench: note:", n)
		}
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "tindbench: REGRESSION:", r)
		}
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "tindbench: %d scenario(s) regressed beyond tolerance vs %s\n",
				len(regressions), *baseline)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tindbench: no regressions vs %s\n", *baseline)
	}
}

// parseConfig validates the benchmark matrix flags.
func parseConfig(sizesCSV string, seed int64, horizon, queries, topkQueries, k int,
	eps float64, delta, repeat, allpairsMax, shards int) (benchConfig, error) {
	cfg := benchConfig{
		Seed: seed, Horizon: horizon, Queries: queries, TopKQueries: topkQueries,
		K: k, Eps: eps, Delta: delta, Repeat: repeat, AllPairsMax: allpairsMax,
		Shards: shards,
	}
	for _, f := range strings.Split(sizesCSV, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(f, "%d", &n); err != nil || n <= 0 {
			return cfg, fmt.Errorf("bad size %q in -sizes", f)
		}
		cfg.Sizes = append(cfg.Sizes, n)
	}
	if len(cfg.Sizes) == 0 {
		return cfg, fmt.Errorf("-sizes is empty")
	}
	if horizon <= 0 || queries <= 0 || topkQueries < 0 || k <= 0 || repeat <= 0 || shards <= 0 {
		return cfg, fmt.Errorf("non-positive matrix flag")
	}
	return cfg, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tindbench:", err)
	os.Exit(2)
}
