package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"tind/internal/core"
	"tind/internal/datagen"
	"tind/internal/history"
	"tind/internal/index"
	"tind/internal/ingest"
	"tind/internal/obs"
	"tind/internal/persist"
	"tind/internal/shard"
	"tind/internal/timeline"
	"tind/internal/wal"
)

// benchConfig is the benchmark matrix: which corpus sizes to run and how
// much work each scenario does. Everything that influences the measured
// work is seeded, so a (config, seed) pair names a reproducible run.
type benchConfig struct {
	Sizes       []int
	Seed        int64
	Horizon     int
	Queries     int
	TopKQueries int
	K           int
	Eps         float64
	Delta       int
	Repeat      int
	AllPairsMax int
	Shards      int
}

// obsKeepPrefixes limits the per-scenario registry diff to the metric
// families that describe pipeline work — funnels, fill ratios, pruning
// power, persist volume and GC activity — keeping the report readable.
var obsKeepPrefixes = []string{
	"tind_query_", "tind_index_", "tind_persist_", "tind_allpairs_", "tind_shard_", "tind_ingest_", "tind_runtime_gc",
}

// bench carries the run-wide measurement state.
type bench struct {
	cfg     benchConfig
	sampler *obs.RuntimeSampler
	log     io.Writer
}

// runBench executes the whole matrix and assembles the report.
func runBench(cfg benchConfig, label string, log io.Writer) (*Report, error) {
	rep := &Report{
		Format:     reportFormat,
		Label:      label,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       cfg.Seed,
		Horizon:    cfg.Horizon,
		Sizes:      cfg.Sizes,
		Shards:     cfg.Shards,
	}
	b := &bench{cfg: cfg, sampler: obs.NewRuntimeSampler(obs.Default()), log: log}
	// The sampler's background ticks are what turns "peak heap" from a
	// single end-of-scenario reading into an actual high-water mark.
	stop := b.sampler.Start(5 * time.Millisecond)
	defer stop()
	for _, n := range cfg.Sizes {
		scs, err := b.runSize(n)
		if err != nil {
			return nil, fmt.Errorf("size %d: %w", n, err)
		}
		rep.Scenarios = append(rep.Scenarios, scs...)
	}
	return rep, nil
}

// runSize runs every scenario of one corpus size. Kept in sync with
// scenarioNames — TestScenarioNamesMatchRun pins the correspondence.
func (b *bench) runSize(n int) ([]Scenario, error) {
	cfg := b.cfg
	var out []Scenario
	add := func(sc Scenario, err error) error {
		if err != nil {
			return err
		}
		out = append(out, sc)
		fmt.Fprintf(b.log, "tindbench: %-24s %14.1f ns/op  (%d ops, peak heap %.1f MB)\n",
			sc.Name, sc.NsPerOp, sc.Ops, float64(sc.PeakHeapBytes)/(1<<20))
		return nil
	}

	var corpus *datagen.Corpus
	err := add(b.scenario(fmt.Sprintf("datagen/%d", n), 1, func() error {
		c, err := datagen.Generate(datagen.Config{
			Seed: cfg.Seed, Attributes: n, Horizon: timeline.Time(cfg.Horizon),
		})
		corpus = c
		return err
	}))
	if err != nil {
		return nil, err
	}
	ds := corpus.Dataset
	p := core.Params{Epsilon: cfg.Eps, Delta: timeline.Time(cfg.Delta), Weight: timeline.Uniform(ds.Horizon())}

	opt := index.DefaultOptions(ds.Horizon())
	opt.Params = p
	opt.Reverse = true
	opt.Seed = cfg.Seed

	var idx *index.Index
	err = add(b.scenario(fmt.Sprintf("index_build/%d", n), 1, func() error {
		var err error
		idx, err = index.Build(ds, opt)
		return err
	}))
	if err != nil {
		return nil, err
	}

	// The sharded build runs the same corpus through shard.Build with the
	// per-shard slice budget PartitionOptions derives from the monolith's
	// — the apples-to-apples scale-out comparison against index_build.
	var sx *shard.ShardedIndex
	err = add(b.scenario(fmt.Sprintf("shard_build/%d", n), 1, func() error {
		var err error
		sx, err = shard.Build(ds, shard.Options{
			Shards: cfg.Shards, Seed: cfg.Seed, Index: shard.PartitionOptions(opt, cfg.Shards),
		})
		return err
	}))
	if err != nil {
		return nil, err
	}

	// The query sample is drawn from a seed derived from (seed, size), so
	// it is stable across runs and independent of the other sizes.
	rng := rand.New(rand.NewSource(cfg.Seed<<16 + int64(n)))
	qids := rng.Perm(ds.Len())
	nq := min(cfg.Queries, len(qids))
	ctx := context.Background()

	runQueries := func(mode index.Mode, ids []int, o index.QueryOptions) func() error {
		return func() error {
			for _, id := range ids {
				o.Mode = mode
				if _, err := idx.Query(ctx, ds.Attr(history.AttrID(id)), o); err != nil {
					return err
				}
			}
			return nil
		}
	}
	err = add(b.scenario(fmt.Sprintf("query/forward/%d", n), int64(nq),
		runQueries(index.ModeForward, qids[:nq], index.QueryOptions{Params: p})))
	if err != nil {
		return nil, err
	}
	err = add(b.scenario(fmt.Sprintf("query/reverse/%d", n), int64(nq),
		runQueries(index.ModeReverse, qids[:nq], index.QueryOptions{Params: p})))
	if err != nil {
		return nil, err
	}

	// Batched execution of the same seeded workload: one QueryBatch call
	// services the whole query set, so ns/op and — above all — allocs/op
	// are directly comparable to the per-query scenarios; the gap is the
	// batch API's amortization (row-major matrix sweeps, pooled scratch).
	batchFor := func(mode index.Mode, ids []int, o index.QueryOptions) []index.BatchQuery {
		batch := make([]index.BatchQuery, len(ids))
		for i, id := range ids {
			bo := o
			bo.Mode = mode
			batch[i] = index.BatchQuery{ByID: true, ID: history.AttrID(id), Options: bo}
		}
		return batch
	}
	runBatch := func(eng interface {
		QueryBatch(context.Context, []index.BatchQuery, index.BatchOptions) ([]index.Result, error)
	}, mode index.Mode, ids []int, o index.QueryOptions) func() error {
		return func() error {
			_, err := eng.QueryBatch(ctx, batchFor(mode, ids, o), index.BatchOptions{})
			return err
		}
	}
	err = add(b.scenario(fmt.Sprintf("query_batch/forward/%d", n), int64(nq),
		runBatch(idx, index.ModeForward, qids[:nq], index.QueryOptions{Params: p})))
	if err != nil {
		return nil, err
	}
	err = add(b.scenario(fmt.Sprintf("query_batch/reverse/%d", n), int64(nq),
		runBatch(idx, index.ModeReverse, qids[:nq], index.QueryOptions{Params: p})))
	if err != nil {
		return nil, err
	}
	if cfg.TopKQueries > 0 {
		nt := min(cfg.TopKQueries, len(qids))
		err = add(b.scenario(fmt.Sprintf("query/topk/%d", n), int64(nt),
			runQueries(index.ModeTopK, qids[:nt], index.QueryOptions{
				Params: core.Params{Delta: p.Delta, Weight: p.Weight}, K: cfg.K,
			})))
		if err != nil {
			return nil, err
		}
	}

	runShardQueries := func(mode index.Mode, ids []int, o index.QueryOptions) func() error {
		return func() error {
			for _, id := range ids {
				o.Mode = mode
				if _, err := sx.Query(ctx, ds.Attr(history.AttrID(id)), o); err != nil {
					return err
				}
			}
			return nil
		}
	}
	err = add(b.scenario(fmt.Sprintf("shard_query/forward/%d", n), int64(nq),
		runShardQueries(index.ModeForward, qids[:nq], index.QueryOptions{Params: p})))
	if err != nil {
		return nil, err
	}
	err = add(b.scenario(fmt.Sprintf("shard_query/reverse/%d", n), int64(nq),
		runShardQueries(index.ModeReverse, qids[:nq], index.QueryOptions{Params: p})))
	if err != nil {
		return nil, err
	}
	err = add(b.scenario(fmt.Sprintf("shard_query_batch/forward/%d", n), int64(nq),
		runBatch(sx, index.ModeForward, qids[:nq], index.QueryOptions{Params: p})))
	if err != nil {
		return nil, err
	}

	if cfg.AllPairsMax > 0 && n <= cfg.AllPairsMax {
		err = add(b.scenario(fmt.Sprintf("allpairs/%d", n), 1, func() error {
			_, err := idx.AllPairsContext(ctx, p, 0)
			return err
		}))
		if err != nil {
			return nil, err
		}
	}

	err = add(b.scenario(fmt.Sprintf("persist/roundtrip/%d", n), 1, func() error {
		var buf bytes.Buffer
		if err := persist.Write(ds, &buf); err != nil {
			return err
		}
		_, err := persist.Read(bytes.NewReader(buf.Bytes()))
		return err
	}))
	if err != nil {
		return nil, err
	}

	// reslice: the coverage-repair pass. Half the attributes are dirtied
	// with an idempotent refresh (same horizon, no data change — so every
	// repetition does identical work), then one Reslice pass re-selects
	// slices and restores full pruning coverage. The unchanged horizon
	// pins the pass to the build's slice selection, leaving the index in
	// its original state for whatever runs next.
	half := make([]history.AttrID, ds.Len()/2)
	for i := range half {
		half[i] = history.AttrID(i * 2)
	}
	err = add(b.scenario(fmt.Sprintf("reslice/%d", n), 1, func() error {
		if err := idx.Refresh(half, ds.Horizon()); err != nil {
			return err
		}
		st, err := idx.Reslice()
		if err != nil {
			return err
		}
		if st.DirtyAfter != 0 || st.CoverageAfter != 1 {
			return fmt.Errorf("reslice left dirty=%d coverage=%g", st.DirtyAfter, st.CoverageAfter)
		}
		return nil
	}))
	if err != nil {
		return nil, err
	}

	// refresh_ingest: live delta batches through the WAL-backed ingester
	// into shard-local refresh — the serving-side maintenance path
	// (validate → WAL append → apply). Runs last within a size: it evolves
	// the dataset, which must not leak into the scenarios above. The WAL
	// runs unsynced so the numbers measure the pipeline, not the disk.
	feed := newIngestFeed(ds)
	perRound := min(32, ds.Len())
	err = add(b.scenario(fmt.Sprintf("refresh_ingest/%d", n), int64(ingestRounds*(1+perRound)), func() error {
		dir, err := os.MkdirTemp("", "tindbench-wal")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		log, err := wal.Open(filepath.Join(dir, "ingest.wal"), wal.Options{Sync: wal.SyncNever})
		if err != nil {
			return err
		}
		in := ingest.New(sx, ds, log, ingest.Options{MaxDirty: 1 << 30, MaxDirtyAge: time.Hour})
		for r := 0; r < ingestRounds; r++ {
			if err := in.Submit(feed.round(r, perRound)); err != nil {
				return err
			}
		}
		if err := in.Flush(); err != nil {
			return err
		}
		if err := in.Close(); err != nil {
			return err
		}
		return log.Close()
	}))
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ingestRounds is the number of delta batches the refresh_ingest
// scenario submits per repetition.
const ingestRounds = 6

// ingestFeed produces valid delta batches against a client-side shadow
// of the evolving dataset state, like an external ingest client. State
// persists across repetitions so every batch stays valid as the dataset
// evolves.
type ingestFeed struct {
	horizon timeline.Time
	ends    []timeline.Time
	batch   int
}

func newIngestFeed(ds *history.Dataset) *ingestFeed {
	f := &ingestFeed{horizon: ds.Horizon(), ends: make([]timeline.Time, ds.Len())}
	for i := range f.ends {
		f.ends[i] = ds.Attr(history.AttrID(i)).ObservedUntil()
	}
	return f
}

func (f *ingestFeed) round(r, perRound int) []wal.Record {
	f.batch++
	f.horizon += 2
	recs := []wal.Record{{Type: wal.TypeExtendHorizon, Horizon: f.horizon}}
	for i := 0; i < perRound; i++ {
		a := history.AttrID((r*perRound + i) % len(f.ends))
		recs = append(recs, wal.Record{
			Type: wal.TypeAppend, Attr: a,
			Start: f.ends[a], End: f.horizon,
			Values: []string{fmt.Sprintf("ingest-%d-%d", f.batch, a)},
		})
		f.ends[a] = f.horizon
	}
	return recs
}

// scenarioNames returns the scenario set a config produces, in run
// order, without running anything — the contract behind "two runs with
// the same flags produce identical scenario sets".
func scenarioNames(cfg benchConfig) []string {
	var names []string
	for _, n := range cfg.Sizes {
		names = append(names,
			fmt.Sprintf("datagen/%d", n),
			fmt.Sprintf("index_build/%d", n),
			fmt.Sprintf("shard_build/%d", n),
			fmt.Sprintf("query/forward/%d", n),
			fmt.Sprintf("query/reverse/%d", n),
			fmt.Sprintf("query_batch/forward/%d", n),
			fmt.Sprintf("query_batch/reverse/%d", n),
		)
		if cfg.TopKQueries > 0 {
			names = append(names, fmt.Sprintf("query/topk/%d", n))
		}
		names = append(names,
			fmt.Sprintf("shard_query/forward/%d", n),
			fmt.Sprintf("shard_query/reverse/%d", n),
			fmt.Sprintf("shard_query_batch/forward/%d", n),
		)
		if cfg.AllPairsMax > 0 && n <= cfg.AllPairsMax {
			names = append(names, fmt.Sprintf("allpairs/%d", n))
		}
		names = append(names,
			fmt.Sprintf("persist/roundtrip/%d", n),
			fmt.Sprintf("reslice/%d", n),
			fmt.Sprintf("refresh_ingest/%d", n),
		)
	}
	return names
}

// scenario measures fn: wall time, allocation deltas, peak heap and the
// scenario-scoped obs diff. With Repeat > 1 the columns split by what
// they answer (DESIGN.md §7.3): the timing fields and the obs diff come
// from the fastest repetition — each repetition is measured in full, so
// the counters always describe exactly one execution — while the memory
// fields keep the worst repetition, because peak heap and allocation
// footprints are capacity questions and the fastest run is often also
// the one that happened to allocate least.
func (b *bench) scenario(name string, ops int64, fn func() error) (Scenario, error) {
	sc := Scenario{Name: name, Ops: ops}
	for rep := 0; rep < b.cfg.Repeat; rep++ {
		// Settle the heap so one scenario's garbage is not billed to the
		// next, and the peak watermark starts from a clean floor.
		runtime.GC()
		b.sampler.ResetPeak()
		b.sampler.Sample()
		before := obs.Default().Snapshot()
		var ms0 runtime.MemStats
		runtime.ReadMemStats(&ms0)

		start := time.Now()
		err := fn()
		wall := time.Since(start)
		if err != nil {
			return Scenario{}, fmt.Errorf("%s: %w", name, err)
		}

		var ms1 runtime.MemStats
		runtime.ReadMemStats(&ms1)
		b.sampler.Sample()

		if rep == 0 || wall.Nanoseconds() < sc.WallNs {
			sc.WallNs = wall.Nanoseconds()
			sc.NsPerOp = float64(wall.Nanoseconds()) / float64(ops)
			sc.Obs = obs.Default().Snapshot().Diff(before).FilterPrefix(obsKeepPrefixes...)
		}
		if v := int64(ms1.TotalAlloc-ms0.TotalAlloc) / ops; v > sc.BytesPerOp {
			sc.BytesPerOp = v
		}
		if v := int64(ms1.Mallocs-ms0.Mallocs) / ops; v > sc.AllocsPerOp {
			sc.AllocsPerOp = v
		}
		if v := b.sampler.PeakHeapBytes(); v > sc.PeakHeapBytes {
			sc.PeakHeapBytes = v
		}
	}
	return sc, nil
}
