package main

import (
	"io"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"tind/internal/obs"
)

func tinyConfig() benchConfig {
	return benchConfig{
		Sizes: []int{60}, Seed: 7, Horizon: 300,
		Queries: 5, TopKQueries: 2, K: 3,
		Eps: 3, Delta: 7, Repeat: 1, AllPairsMax: 100, Shards: 4,
	}
}

// TestScenarioNamesMatchRun pins the contract that scenarioNames (used
// by -list and by the determinism guarantee) mirrors what runBench
// actually executes.
func TestScenarioNamesMatchRun(t *testing.T) {
	cfg := tinyConfig()
	rep, err := runBench(cfg, "test", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, sc := range rep.Scenarios {
		got = append(got, sc.Name)
	}
	if want := scenarioNames(cfg); !reflect.DeepEqual(got, want) {
		t.Fatalf("run produced %v, scenarioNames says %v", got, want)
	}

	for _, sc := range rep.Scenarios {
		if sc.Ops <= 0 || sc.WallNs <= 0 || sc.NsPerOp <= 0 {
			t.Errorf("%s: empty measurement %+v", sc.Name, sc)
		}
		if sc.PeakHeapBytes == 0 {
			t.Errorf("%s: peak heap not tracked", sc.Name)
		}
		if sc.Obs == nil {
			t.Errorf("%s: no scenario-scoped obs diff", sc.Name)
		}
		// datagen touches none of the kept metric families, so its diff
		// is legitimately empty; everything downstream must report work.
		if !strings.HasPrefix(sc.Name, "datagen/") && len(sc.Obs.Metrics) == 0 {
			t.Errorf("%s: empty obs diff", sc.Name)
		}
	}
	// Query scenarios must carry the gated work counters.
	for _, name := range []string{"query/forward/60", "allpairs/60"} {
		sc := findScenario(t, rep, name)
		if _, ok := obsSum(sc, "tind_query_exact_checks_total"); !ok {
			t.Errorf("%s: missing exact-check counter in obs diff", name)
		}
	}
	// The persist scenario must see the persist byte counters.
	sc := findScenario(t, rep, "persist/roundtrip/60")
	if v, ok := obsSum(sc, "tind_persist_write_bytes_total"); !ok || v <= 0 {
		t.Errorf("persist scenario obs = (%g, %v), want positive write bytes", v, ok)
	}
}

func findScenario(t *testing.T, rep *Report, name string) Scenario {
	t.Helper()
	for _, sc := range rep.Scenarios {
		if sc.Name == name {
			return sc
		}
	}
	t.Fatalf("scenario %s missing from report", name)
	return Scenario{}
}

// TestScenarioNamesDeterministic: the -allpairs-max and -topk-queries
// gates change the set predictably, nothing else does.
func TestScenarioNamesDeterministic(t *testing.T) {
	cfg := tinyConfig()
	a, b := scenarioNames(cfg), scenarioNames(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("scenarioNames not deterministic")
	}
	cfg.AllPairsMax = 0
	for _, n := range scenarioNames(cfg) {
		if n == "allpairs/60" {
			t.Fatal("allpairs scenario present despite -allpairs-max 0")
		}
	}
	cfg.TopKQueries = 0
	for _, n := range scenarioNames(cfg) {
		if n == "query/topk/60" {
			t.Fatal("topk scenario present despite -topk-queries 0")
		}
	}
}

func TestParseTolerance(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
		ok   bool
	}{
		{"10%", 0.10, true},
		{"0.1", 0.1, true},
		{" 25% ", 0.25, true},
		{"0", 0, true},
		{"-5%", 0, false},
		{"abc", 0, false},
	} {
		got, err := parseTolerance(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("parseTolerance(%q) = %g, %v; want %g ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

func TestGateOverrides(t *testing.T) {
	g, err := parseGate("10%", "allpairs/*=25%,query/*=0.5", 0)
	if err != nil {
		t.Fatal(err)
	}
	if tol := g.toleranceFor("allpairs/500"); tol != 0.25 {
		t.Fatalf("allpairs tolerance = %g, want 0.25", tol)
	}
	if tol := g.toleranceFor("query/forward/500"); tol != 0.5 {
		t.Fatalf("query tolerance = %g, want 0.5", tol)
	}
	if tol := g.toleranceFor("index_build/500"); tol != 0.10 {
		t.Fatalf("default tolerance = %g, want 0.10", tol)
	}
	if _, err := parseGate("10%", "missing-equals", 0); err == nil {
		t.Fatal("malformed override must be rejected")
	}
}

// report builds a minimal report with one scenario of the given timing
// and gated-counter value.
func mkReport(ns int64, exactChecks float64) *Report {
	snap := &obs.Snapshot{Metrics: []obs.Metric{
		{Name: "tind_query_exact_checks_total", Kind: "counter", Value: exactChecks},
	}}
	return &Report{
		Format: reportFormat,
		Scenarios: []Scenario{
			{Name: "query/forward/500", Ops: 10, WallNs: ns * 10, NsPerOp: float64(ns), Obs: snap},
		},
	}
}

func TestCompareGate(t *testing.T) {
	g := gateConfig{tolerance: 0.10}

	// Within tolerance: clean.
	if regs, _ := compare(mkReport(105, 50), mkReport(100, 50), g); len(regs) != 0 {
		t.Fatalf("5%% slower flagged at 10%% tolerance: %v", regs)
	}
	// Beyond tolerance: regression.
	if regs, _ := compare(mkReport(150, 50), mkReport(100, 50), g); len(regs) != 1 {
		t.Fatalf("50%% slower not flagged: %v", regs)
	}
	// Much faster than baseline (the doctored-slower-baseline case):
	// never a regression, only a note.
	regs, notes := compare(mkReport(50, 50), mkReport(200, 50), g)
	if len(regs) != 0 || len(notes) != 1 {
		t.Fatalf("improvement handled wrong: regs=%v notes=%v", regs, notes)
	}
	// Counter drift is a regression even when timing is fine.
	if regs, _ := compare(mkReport(100, 80), mkReport(100, 50), g); len(regs) != 1 {
		t.Fatalf("counter drift not flagged: %v", regs)
	}
	// Noise floor: sub-threshold scenarios are not wall-gated.
	gFloor := gateConfig{tolerance: 0.10, minWallNs: 1e9}
	if regs, _ := compare(mkReport(150, 50), mkReport(100, 50), gFloor); len(regs) != 0 {
		t.Fatalf("noise-floor scenario still wall-gated: %v", regs)
	}
	// Scenario-set drift: notes, not regressions.
	extra := mkReport(100, 50)
	extra.Scenarios = append(extra.Scenarios, Scenario{Name: "allpairs/500", Ops: 1, WallNs: 1, NsPerOp: 1})
	_, notes = compare(extra, mkReport(100, 50), g)
	if len(notes) != 1 {
		t.Fatalf("new scenario not noted: %v", notes)
	}
	_, notes = compare(mkReport(100, 50), extra, g)
	if len(notes) != 1 {
		t.Fatalf("vanished scenario not noted: %v", notes)
	}
}

// mkMemReport builds a report whose single scenario carries the given
// allocation profile alongside identical timing, so only the memory
// gate can fire.
func mkMemReport(bytesPerOp, allocsPerOp int64) *Report {
	rep := mkReport(100, 50)
	rep.Scenarios[0].BytesPerOp = bytesPerOp
	rep.Scenarios[0].AllocsPerOp = allocsPerOp
	return rep
}

// TestCompareMemoryGate: B/op and allocs/op regress growth-only under
// the scenario's tolerance, improvements are notes, and either side
// below the noise floor disarms that counter's gate.
func TestCompareMemoryGate(t *testing.T) {
	g := gateConfig{tolerance: 0.10}
	const aboveB, aboveA = 2 * memBytesFloor, 2 * memAllocsFloor

	// Within tolerance: clean.
	if regs, _ := compare(mkMemReport(aboveB+aboveB/20, aboveA), mkMemReport(aboveB, aboveA), g); len(regs) != 0 {
		t.Fatalf("5%% B/op growth flagged at 10%% tolerance: %v", regs)
	}
	// B/op growth beyond tolerance: regression.
	regs, _ := compare(mkMemReport(2*aboveB, aboveA), mkMemReport(aboveB, aboveA), g)
	if len(regs) != 1 || !strings.Contains(regs[0], "B/op") {
		t.Fatalf("2x B/op growth not flagged as B/op regression: %v", regs)
	}
	// allocs/op growth beyond tolerance: regression.
	regs, _ = compare(mkMemReport(aboveB, 2*aboveA), mkMemReport(aboveB, aboveA), g)
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
		t.Fatalf("2x allocs/op growth not flagged as allocs/op regression: %v", regs)
	}
	// Improvement (the batch API's whole point): a note, never a regression.
	regs, notes := compare(mkMemReport(aboveB, aboveA), mkMemReport(4*aboveB, 4*aboveA), g)
	if len(regs) != 0 || len(notes) != 2 {
		t.Fatalf("allocation improvement handled wrong: regs=%v notes=%v", regs, notes)
	}
	// Either side under the floor: gate disarmed for that counter.
	if regs, _ := compare(mkMemReport(memBytesFloor/2, memAllocsFloor/2), mkMemReport(memBytesFloor/8, memAllocsFloor/8), g); len(regs) != 0 {
		t.Fatalf("sub-floor allocation growth gated: %v", regs)
	}
	if regs, _ := compare(mkMemReport(2*aboveB, 2*aboveA), mkMemReport(memBytesFloor/2, memAllocsFloor/2), g); len(regs) != 0 {
		t.Fatalf("sub-floor baseline used as gating denominator: %v", regs)
	}
	// Per-scenario tolerance overrides cover the memory gate too.
	gWide, err := parseGate("10%", "query/*=200%", 0)
	if err != nil {
		t.Fatal(err)
	}
	if regs, _ := compare(mkMemReport(2*aboveB, 2*aboveA), mkMemReport(aboveB, aboveA), gWide); len(regs) != 0 {
		t.Fatalf("override tolerance not applied to memory gate: %v", regs)
	}
}

func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "BENCH_test.json")
	rep := mkReport(123, 7)
	rep.Label, rep.Sizes, rep.Seed = "test", []int{500}, 3
	if err := writeReport(rep, p); err != nil {
		t.Fatal(err)
	}
	back, err := readReport(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Fatalf("report round-trip changed:\n%+v\n%+v", rep, back)
	}

	// A foreign format must be rejected, not silently compared.
	rep.Format = "go-bench-text"
	bad := filepath.Join(dir, "BENCH_bad.json")
	if err := writeReport(rep, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := readReport(bad); err == nil {
		t.Fatal("foreign report format accepted")
	}
}

func TestParseConfig(t *testing.T) {
	cfg, err := parseConfig("500, 2000", 1, 1500, 40, 8, 10, 3, 7, 1, 2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg.Sizes, []int{500, 2000}) {
		t.Fatalf("sizes = %v", cfg.Sizes)
	}
	for _, bad := range []string{"", "abc", "0", "-5"} {
		if _, err := parseConfig(bad, 1, 1500, 40, 8, 10, 3, 7, 1, 2000, 4); err == nil {
			t.Errorf("parseConfig(%q) accepted", bad)
		}
	}
	if _, err := parseConfig("500", 1, 1500, 40, 8, 10, 3, 7, 1, 2000, 0); err == nil {
		t.Error("parseConfig accepted a zero shard count")
	}
}

// TestScenarioNsPerOpNotTruncated: with more ops than nanoseconds of
// wall time, integer division would truncate ns/op to zero and every
// downstream gate on it would silently pass. The per-op figure must stay
// a positive float no matter the op count.
func TestScenarioNsPerOpNotTruncated(t *testing.T) {
	b := &bench{cfg: benchConfig{Repeat: 1}, sampler: obs.NewRuntimeSampler(obs.Default()), log: io.Discard}
	sc, err := b.scenario("x", 1<<40, func() error {
		time.Sleep(2 * time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(sc.NsPerOp > 0) {
		t.Fatalf("ns/op = %v for %d ops over %d ns wall; truncated to nothing", sc.NsPerOp, sc.Ops, sc.WallNs)
	}
}

// TestCompareGatesZeroNsPerOpBaseline: a baseline row whose ns/op
// truncated to zero (the bug above, as written by older runs) must not
// disarm the wall gate — the comparison falls back to the wall-time
// ratio. And when a row has no usable timing at all, the skip is printed,
// never silent.
func TestCompareGatesZeroNsPerOpBaseline(t *testing.T) {
	g := gateConfig{tolerance: 0.10}
	base := mkReport(100, 50)
	base.Scenarios[0].NsPerOp = 0
	cur := mkReport(150, 50)
	cur.Scenarios[0].NsPerOp = 0
	regs, _ := compare(cur, base, g)
	if len(regs) != 1 {
		t.Fatalf("50%% wall regression hidden behind zero ns/op: regs=%v", regs)
	}

	base = mkReport(100, 50)
	base.Scenarios[0].NsPerOp = 0
	base.Scenarios[0].WallNs = 0
	regs, notes := compare(mkReport(150, 50), base, g)
	if len(regs) != 0 {
		t.Fatalf("untimeable baseline row must not regress: %v", regs)
	}
	skipNoted := false
	for _, n := range notes {
		if strings.Contains(n, "skip") {
			skipNoted = true
		}
	}
	if !skipNoted {
		t.Fatalf("skipped wall gate not announced in notes: %v", notes)
	}
}

// TestRepeatSplitsMinTimingMaxMemory: with -repeat N the timing columns
// must come from the fastest repetition while the memory columns keep
// the worst repetition — a fast run with a bloated heap must not launder
// its footprint through another repetition's numbers.
func TestRepeatSplitsMinTimingMaxMemory(t *testing.T) {
	b := &bench{cfg: benchConfig{Repeat: 2}, sampler: obs.NewRuntimeSampler(obs.Default()), log: io.Discard}
	var rep int
	var sink []byte
	sc, err := b.scenario("x", 1, func() error {
		rep++
		if rep == 1 {
			sink = make([]byte, 32<<20) // slow, allocation-heavy repetition
			time.Sleep(40 * time.Millisecond)
		} else {
			time.Sleep(2 * time.Millisecond)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = sink
	if sc.WallNs >= (30 * time.Millisecond).Nanoseconds() {
		t.Fatalf("wall %d ns reports the slow repetition, want the fastest", sc.WallNs)
	}
	if sc.BytesPerOp < 32<<20 {
		t.Fatalf("bytes/op %d dropped the heavy repetition's allocations, want max across repeats", sc.BytesPerOp)
	}
	if sc.PeakHeapBytes < 32<<20 {
		t.Fatalf("peak heap %d dropped the heavy repetition, want max across repeats", sc.PeakHeapBytes)
	}
}
