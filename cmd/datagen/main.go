// Command datagen generates a synthetic Wikipedia-table corpus and either
// summarizes it or writes it out as a wikitext revision stream (JSON
// lines) for the end-to-end extraction pipeline.
//
// Usage:
//
//	datagen -attrs 5000 -horizon 2000                  # print corpus stats
//	datagen -attrs 500 -wikitext revisions.jsonl       # emit revision stream
//	datagen -attrs 500 -truth truth.tsv                # dump the oracle labels
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"tind/internal/datagen"
	"tind/internal/history"
	"tind/internal/persist"
	"tind/internal/timeline"
)

func main() {
	var (
		attrs    = flag.Int("attrs", 1000, "number of attributes")
		horizon  = flag.Int("horizon", 2000, "observation period in days")
		seed     = flag.Int64("seed", 1, "random seed")
		wikitext = flag.String("wikitext", "", "write the corpus as a wikitext revision stream (JSONL) to this file")
		truth    = flag.String("truth", "", "write the genuine-pair oracle as TSV to this file")
		out      = flag.String("out", "", "write the corpus as a binary dataset (.tind) to this file")
	)
	flag.Parse()

	c, err := datagen.Generate(datagen.Config{
		Seed:       *seed,
		Attributes: *attrs,
		Horizon:    timeline.Time(*horizon),
	})
	if err != nil {
		fatal(err)
	}

	st := c.Dataset.ComputeStats()
	fmt.Printf("attributes:        %d\n", st.Attributes)
	fmt.Printf("horizon:           %d days\n", *horizon)
	fmt.Printf("distinct values:   %d\n", st.DistinctValues)
	fmt.Printf("mean changes:      %.1f\n", st.MeanChanges)
	fmt.Printf("mean lifespan:     %.0f days\n", st.MeanLifespanDay)
	fmt.Printf("mean cardinality:  %.1f\n", st.MeanCardinality)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := persist.Write(c.Dataset, f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote binary dataset to %s\n", *out)
	}

	if *wikitext != "" {
		f, err := os.Create(*wikitext)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w := bufio.NewWriter(f)
		enc := json.NewEncoder(w)
		revs := datagen.EmitRevisions(c, timeline.Epoch)
		for _, r := range revs {
			if err := enc.Encode(r); err != nil {
				fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d revisions to %s\n", len(revs), *wikitext)
	}

	if *truth != "" {
		f, err := os.Create(*truth)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w := bufio.NewWriter(f)
		n := 0
		for lhs := history.AttrID(0); int(lhs) < c.Dataset.Len(); lhs++ {
			for rhs := history.AttrID(0); int(rhs) < c.Dataset.Len(); rhs++ {
				if c.Truth.Genuine(lhs, rhs) {
					fmt.Fprintf(w, "%s\t%s\n",
						c.Dataset.Attr(lhs).Meta(), c.Dataset.Attr(rhs).Meta())
					n++
				}
			}
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d genuine pairs to %s\n", n, *truth)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
