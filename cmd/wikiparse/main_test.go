package main

import (
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tind/internal/wiki"
)

const tinyDump = `<mediawiki><page><title>X</title><ns>0</ns>
<revision><id>1</id><timestamp>2004-01-01T00:00:00Z</timestamp><text>{|
! A
|-
| x
|}</text></revision>
</page></mediawiki>`

func readAll(t *testing.T, r io.Reader) string {
	t.Helper()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestOpenDumpPlain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dump.xml")
	if err := os.WriteFile(path, []byte(tinyDump), 0o644); err != nil {
		t.Fatal(err)
	}
	r, closeFn, err := openDump(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()
	if got := readAll(t, r); got != tinyDump {
		t.Fatal("plain dump content mismatch")
	}
}

func TestOpenDumpGzip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dump.xml.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	gz := gzip.NewWriter(f)
	gz.Write([]byte(tinyDump))
	gz.Close()
	f.Close()

	r, closeFn, err := openDump(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()
	if got := readAll(t, r); got != tinyDump {
		t.Fatal("gzip dump content mismatch")
	}
}

func TestOpenDumpMissing(t *testing.T) {
	if _, _, err := openDump(filepath.Join(t.TempDir(), "nope.xml")); err == nil {
		t.Fatal("missing dump must fail")
	}
}

func TestOpenDumpBadGzip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.gz")
	os.WriteFile(path, []byte("not gzip"), 0o644)
	if _, _, err := openDump(path); err == nil {
		t.Fatal("corrupt gzip must fail")
	}
}

const mixedDump = `<mediawiki><page><title>Bad</title><ns>0</ns>
<revision><id>1</id><timestamp>not-a-time</timestamp><text>{| x |}</text></revision>
</page><page><title>Good</title><ns>0</ns>
<revision><id>2</id><timestamp>2004-01-01T00:00:00Z</timestamp><text>{| y |}</text></revision>
</page></mediawiki>`

const allBadDump = `<mediawiki><page><title>Bad</title><ns>0</ns>
<revision><id>1</id><timestamp>not-a-time</timestamp><text>{| x |}</text></revision>
</page></mediawiki>`

func TestParseStageSkipsMalformedRecords(t *testing.T) {
	var log strings.Builder
	var got []int64
	nRevs, malformed, err := parseStage(strings.NewReader(mixedDump), wiki.DumpOptions{},
		false, &log, func(r wiki.Revision) error {
			got = append(got, r.ID)
			return nil
		})
	if err != nil {
		t.Fatalf("one bad record must not abort the dump: %v", err)
	}
	if nRevs != 1 || len(got) != 1 || got[0] != 2 {
		t.Fatalf("good revision must survive: nRevs=%d got=%v", nRevs, got)
	}
	if malformed != 1 {
		t.Fatalf("malformed count = %d, want 1", malformed)
	}
	if !strings.Contains(log.String(), "skipping malformed record") {
		t.Fatalf("skip must be logged, got: %q", log.String())
	}
}

func TestParseStageFailsWhenEverythingMalformed(t *testing.T) {
	var log strings.Builder
	nRevs, malformed, err := parseStage(strings.NewReader(allBadDump), wiki.DumpOptions{},
		false, &log, func(wiki.Revision) error { return nil })
	if err == nil {
		t.Fatal("a dump where every record is malformed must fail")
	}
	if nRevs != 0 || malformed != 1 {
		t.Fatalf("nRevs=%d malformed=%d", nRevs, malformed)
	}
}

func TestParseStageStrictAbortsOnFirstError(t *testing.T) {
	var log strings.Builder
	_, _, err := parseStage(strings.NewReader(mixedDump), wiki.DumpOptions{},
		true, &log, func(wiki.Revision) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "timestamp") {
		t.Fatalf("strict mode must abort on the bad timestamp, got %v", err)
	}
}

func TestOpenDumpBz2Extension(t *testing.T) {
	// bzip2 readers are lazy; opening must succeed, reading must fail on
	// garbage.
	path := filepath.Join(t.TempDir(), "bad.bz2")
	os.WriteFile(path, []byte("not bzip2"), 0o644)
	r, closeFn, err := openDump(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()
	if _, err := io.ReadAll(r); err == nil {
		t.Fatal("garbage bzip2 must fail on read")
	}
}
