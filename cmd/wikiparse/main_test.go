package main

import (
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"testing"
)

const tinyDump = `<mediawiki><page><title>X</title><ns>0</ns>
<revision><id>1</id><timestamp>2004-01-01T00:00:00Z</timestamp><text>{|
! A
|-
| x
|}</text></revision>
</page></mediawiki>`

func readAll(t *testing.T, r io.Reader) string {
	t.Helper()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestOpenDumpPlain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dump.xml")
	if err := os.WriteFile(path, []byte(tinyDump), 0o644); err != nil {
		t.Fatal(err)
	}
	r, closeFn, err := openDump(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()
	if got := readAll(t, r); got != tinyDump {
		t.Fatal("plain dump content mismatch")
	}
}

func TestOpenDumpGzip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dump.xml.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	gz := gzip.NewWriter(f)
	gz.Write([]byte(tinyDump))
	gz.Close()
	f.Close()

	r, closeFn, err := openDump(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()
	if got := readAll(t, r); got != tinyDump {
		t.Fatal("gzip dump content mismatch")
	}
}

func TestOpenDumpMissing(t *testing.T) {
	if _, _, err := openDump(filepath.Join(t.TempDir(), "nope.xml")); err == nil {
		t.Fatal("missing dump must fail")
	}
}

func TestOpenDumpBadGzip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.gz")
	os.WriteFile(path, []byte("not gzip"), 0o644)
	if _, _, err := openDump(path); err == nil {
		t.Fatal("corrupt gzip must fail")
	}
}

func TestOpenDumpBz2Extension(t *testing.T) {
	// bzip2 readers are lazy; opening must succeed, reading must fail on
	// garbage.
	path := filepath.Join(t.TempDir(), "bad.bz2")
	os.WriteFile(path, []byte("not bzip2"), 0o644)
	r, closeFn, err := openDump(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()
	if _, err := io.ReadAll(r); err == nil {
		t.Fatal("garbage bzip2 must fail on read")
	}
}
