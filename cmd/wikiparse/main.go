// Command wikiparse converts a MediaWiki XML export (pages-meta-history
// dump) into the corpus formats the rest of the toolchain consumes:
// either a JSONL revision stream, or — running the full extraction and
// preprocessing pipeline — a binary tind dataset ready for indexing.
//
// Usage:
//
//	wikiparse -dump pages-meta-history.xml -revisions revs.jsonl
//	wikiparse -dump pages-meta-history.xml.gz -out corpus.tind
//	wikiparse -dump dump.xml.bz2 -out corpus.tind -max-pages 10000
//
// Plain, gzip- and bzip2-compressed dumps are supported (by extension).
package main

import (
	"bufio"
	"compress/bzip2"
	"compress/gzip"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"tind/internal/persist"
	"tind/internal/preprocess"
	"tind/internal/wiki"
)

func main() {
	var (
		dump      = flag.String("dump", "", "MediaWiki XML export (.xml, .xml.gz or .xml.bz2); - for stdin")
		revsOut   = flag.String("revisions", "", "write the raw revision stream as JSONL to this file")
		out       = flag.String("out", "", "run extraction + preprocessing and write a binary dataset to this file")
		maxPages  = flag.Int("max-pages", 0, "stop after this many pages (0 = all)")
		allRevs   = flag.Bool("all-revisions", false, "keep revisions without table markup too")
		startDate = flag.String("start", "2001-01-15", "observation period start (YYYY-MM-DD)")
		endDate   = flag.String("end", "2017-11-01", "observation period end (YYYY-MM-DD)")
		strict    = flag.Bool("strict", false, "abort on the first malformed page/revision instead of skipping it")
	)
	flag.Parse()
	if *dump == "" {
		fmt.Fprintln(os.Stderr, "wikiparse: -dump is required")
		os.Exit(2)
	}
	if *revsOut == "" && *out == "" {
		fmt.Fprintln(os.Stderr, "wikiparse: need -revisions and/or -out")
		os.Exit(2)
	}

	in, closeIn, err := openDump(*dump)
	if err != nil {
		fatal(err)
	}
	defer closeIn()

	var jsonl *json.Encoder
	var jsonlFlush func() error
	if *revsOut != "" {
		f, err := os.Create(*revsOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		jsonl = json.NewEncoder(bw)
		jsonlFlush = bw.Flush
	}

	var ex *wiki.Extractor
	if *out != "" {
		ex = wiki.NewExtractor()
	}

	opt := wiki.DumpOptions{TablesOnly: !*allRevs, MaxPages: *maxPages}
	nRevs, malformed, err := parseStage(in, opt, *strict, os.Stderr, func(r wiki.Revision) error {
		if jsonl != nil {
			if err := jsonl.Encode(r); err != nil {
				return err
			}
		}
		if ex != nil {
			return ex.Process(r)
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}
	if jsonlFlush != nil {
		if err := jsonlFlush(); err != nil {
			fatal(err)
		}
	}
	if malformed > 0 {
		fmt.Fprintf(os.Stderr, "skipped %d malformed records\n", malformed)
	}
	fmt.Fprintf(os.Stderr, "parsed %d revisions\n", nRevs)

	if ex != nil {
		start, err := time.Parse("2006-01-02", *startDate)
		if err != nil {
			fatal(fmt.Errorf("bad -start: %w", err))
		}
		end, err := time.Parse("2006-01-02", *endDate)
		if err != nil {
			fatal(fmt.Errorf("bad -end: %w", err))
		}
		ds, rep, err := preprocess.Run(ex.Records(), preprocess.Config{Start: start, End: end})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "preprocessing: %+v\n", rep)
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := persist.Write(ds, f); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d attributes to %s\n", ds.Len(), *out)
	}
}

// parseStage streams the dump through emit. Multi-terabyte dumps contain
// the occasional mangled record, and one bad page must not throw away
// hours of parsing: unless strict, malformed records are skipped and
// counted (the first few logged in full), and the stage only fails when
// every record was malformed and nothing parsed at all. Tokenizer-level
// XML corruption and emit errors (output-side failures) still abort.
func parseStage(in io.Reader, opt wiki.DumpOptions, strict bool, logw io.Writer, emit func(wiki.Revision) error) (nRevs, malformed int, err error) {
	const logFirst = 5
	if !strict {
		opt.OnMalformed = func(page string, err error) {
			malformed++
			if malformed <= logFirst {
				fmt.Fprintf(logw, "wikiparse: skipping malformed record: %v\n", err)
			} else if malformed == logFirst+1 {
				fmt.Fprintln(logw, "wikiparse: further malformed records suppressed (final count below)")
			}
		}
	}
	err = wiki.ParseDump(in, opt, func(r wiki.Revision) error {
		nRevs++
		return emit(r)
	})
	if err != nil {
		return nRevs, malformed, err
	}
	if nRevs == 0 && malformed > 0 {
		return nRevs, malformed, fmt.Errorf("all %d records malformed, nothing parsed", malformed)
	}
	return nRevs, malformed, nil
}

// openDump opens the dump file, transparently decompressing by extension.
func openDump(path string) (io.Reader, func(), error) {
	if path == "-" {
		return bufio.NewReaderSize(os.Stdin, 1<<20), func() {}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	br := bufio.NewReaderSize(f, 1<<20)
	switch {
	case strings.HasSuffix(path, ".gz"):
		gz, err := gzip.NewReader(br)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		return gz, func() { gz.Close(); f.Close() }, nil
	case strings.HasSuffix(path, ".bz2"):
		return bzip2.NewReader(br), func() { f.Close() }, nil
	default:
		return br, func() { f.Close() }, nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wikiparse:", err)
	os.Exit(1)
}
